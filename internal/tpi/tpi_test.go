package tpi

import (
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/logicsim"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
	"tpilayout/internal/testability"
)

// hardCone builds a circuit with the observation-conflict structure that
// TPI targets: two 4-wide AND subcones whose outputs meet in an AND
// collector feeding a flop. The subcone outputs ("o1"/"o2") are the
// highest-gain test point sites: rarely 1, and the only observation path
// of their whole cone runs through the sibling-gated collector.
func hardCone(t testing.TB) (*netlist.Netlist, map[netlist.NetID]bool) {
	t.Helper()
	lib := stdcell.Default()
	n := netlist.New("hard", lib)
	clk, dom := n.AddClockPI("clk", 10000)
	var pis []netlist.NetID
	for i := 0; i < 9; i++ {
		pis = append(pis, n.AddPI("pi"))
	}
	and2 := lib.MustCell("AND2X1")
	subcone := func(name string, leaves []netlist.NetID) netlist.NetID {
		layer := leaves
		for len(layer) > 1 {
			var next []netlist.NetID
			for i := 0; i+1 < len(layer); i += 2 {
				out := n.AddNet(name)
				n.AddCell("g", and2, []netlist.NetID{layer[i], layer[i+1]}, out)
				next = append(next, out)
			}
			layer = next
		}
		return layer[0]
	}
	o1 := subcone("o1", pis[0:4])
	o2 := subcone("o2", pis[4:8])
	col := n.AddNet("col")
	n.AddCell("col", and2, []netlist.NetID{o1, o2}, col)
	mix := n.AddNet("mix")
	n.AddCell("x", lib.MustCell("XOR2X1"), []netlist.NetID{col, pis[8]}, mix)
	q := n.AddNet("q")
	ff := n.AddCell("ff", lib.MustCell("DFFX1"), []netlist.NetID{mix, clk}, q)
	n.Cells[ff].Domain = dom
	n.AddPO("q", q)
	return n, map[netlist.NetID]bool{o1: true, o2: true}
}

func TestSelectionTargetsHardNet(t *testing.T) {
	n, hard := hardCone(t)
	res, err := Insert(n, Options{Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("inserted %d points, want 2", len(res.Points))
	}
	for _, tp := range res.Points {
		if !hard[tp.Target] {
			t.Errorf("TSFF at %s, want a subcone output", n.Nets[tp.Target].Name)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("netlist invalid after TPI: %v", err)
	}
}

func TestInsertionAddsThreeCellsPerPoint(t *testing.T) {
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.02), lib)
	if err != nil {
		t.Fatal(err)
	}
	before := n.NumLiveCells()
	ffBefore := n.NumFlipFlops()
	res, err := Insert(n, Options{Count: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.NumLiveCells() - before; got != 3*len(res.Points) {
		t.Errorf("cell delta = %d, want %d", got, 3*len(res.Points))
	}
	if got := n.NumFlipFlops() - ffBefore; got != len(res.Points) {
		t.Errorf("FF delta = %d, want %d", got, len(res.Points))
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTSFFModes is the Figure 1 experiment: the TSFF must behave correctly
// in all four operating modes.
func TestTSFFModes(t *testing.T) {
	n, hard := hardCone(t)
	ref, err := logicsim.New(n.Clone())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Insert(n, Options{Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	tp := res.Points[0]
	if !hard[tp.Target] {
		t.Fatal("unexpected target; test assumes a subcone output")
	}
	target := tp.Target
	s, err := logicsim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	stim := []uint64{0xDEAD, 0xBEEF, 0xF00D, 0x1234, 0xFFFF, 0x0F0F, 0xAAAA, 0x5555, 0xC3C3}
	setStim := func(sim *logicsim.Sim, net func(i int) netlist.NetID) {
		for i, w := range stim {
			sim.SetNet(net(i), w)
		}
	}
	piNet := func(i int) netlist.NetID {
		// PIs: clk is PIs[0]; functional pi i at PIs[1+i].
		return n.PIs[1+i].Net
	}

	// Application mode: TE=0, TR=0 — the circuit must compute exactly the
	// pre-TPI function.
	s.SetNet(res.TE, 0)
	s.SetNet(res.TR, 0)
	setStim(s, piNet)
	setStim(ref, piNet)
	s.Propagate()
	ref.Propagate()
	if got, want := s.Get(tp.Out), ref.Get(target); got != want {
		t.Errorf("application mode: TSFF output %#x, transparent value %#x", got, want)
	}

	// Capture mode: TE=0, TR=1 — the flop captures the functional value
	// (observation point) while the output is controlled from the flop
	// (control point).
	s.SetNet(res.TR, ^uint64(0))
	s.Propagate()
	funcVal := s.Get(target)
	s.StepClock(-1)
	if got := s.Get(n.Cells[tp.FF].Out); got != funcVal {
		t.Errorf("capture mode: flop holds %#x, want functional %#x", got, funcVal)
	}
	if got := s.Get(tp.Out); got != s.Get(n.Cells[tp.FF].Out) {
		t.Errorf("capture mode: output %#x not controlled from flop %#x", got, s.Get(n.Cells[tp.FF].Out))
	}

	// Scan shift mode: TE=1, TR=1 — the flop loads TI.
	s.SetNet(res.TE, ^uint64(0))
	tiPin := n.Cells[tp.InMux].Cell.FindInput("b")
	tiNet := n.Cells[tp.InMux].Ins[tiPin]
	s.SetNet(tiNet, 0x7777)
	s.StepClock(-1)
	if got := s.Get(n.Cells[tp.FF].Out); got != 0x7777 {
		t.Errorf("shift mode: flop holds %#x, want 0x7777", got)
	}

	// Flush mode: TE=1, TR=0 — combinational TI → output path.
	s.SetNet(res.TR, 0)
	s.SetNet(tiNet, 0x9999)
	s.Propagate()
	if got := s.Get(tp.Out); got != 0x9999 {
		t.Errorf("flush mode: output %#x, want TI value 0x9999", got)
	}
}

func TestExcludeRespected(t *testing.T) {
	n, hard := hardCone(t)
	res, err := Insert(n, Options{Count: 1, Exclude: hard})
	if err != nil {
		t.Fatal(err)
	}
	if hard[res.Points[0].Target] {
		t.Error("TSFF inserted on an excluded net")
	}
}

func TestDomainAssignmentFollowsNeighbors(t *testing.T) {
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.WirelessCtrlClass().Scale(0.03), lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Insert(n, Options{Count: 12})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, tp := range res.Points {
		if tp.Domain < 0 || tp.Domain >= len(n.Domains) {
			t.Fatalf("test point with invalid domain %d", tp.Domain)
		}
		counts[tp.Domain]++
		// The TSFF flop must be clocked by its domain's clock.
		ff := n.Cells[tp.FF]
		clkNet := ff.Ins[ff.Cell.FindInput("clk")]
		if clkNet != n.PIs[n.Domains[tp.Domain].ClockPI].Net {
			t.Errorf("TSFF %s clock net does not match its domain", ff.Name)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTestabilityImprovesAfterTPI(t *testing.T) {
	n, _ := hardCone(t)
	res, err := Insert(n, Options{Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := res.Points[0].Target
	after, err := testability.Analyze(n, testability.Options{Constraints: res.CaptureConstraints()})
	if err != nil {
		t.Fatal(err)
	}
	// The subcone output feeds the TSFF's flop d-path: it is now directly
	// observable, and its loads see a fully-controllable net.
	if after.Obs[target] < 0.99 {
		t.Errorf("Obs(target) = %g after TPI, want ≈1", after.Obs[target])
	}
	// In capture mode the TSFF output is driven from the scan-loaded
	// flop through one mux: controllability cost 2.
	if after.CC1[res.Points[0].Out] != 2 {
		t.Errorf("TSFF output CC1 = %d, want 2 (scan bit + mux)", after.CC1[res.Points[0].Out])
	}
}

func TestZeroCountIsNoop(t *testing.T) {
	n, _ := hardCone(t)
	before := n.NumLiveCells()
	res, err := Insert(n, Options{Count: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 0 || n.NumLiveCells() != before {
		t.Error("Count=0 modified the netlist")
	}
	if len(res.CaptureConstraints()) != 0 {
		t.Error("constraints non-empty without test points")
	}
}
