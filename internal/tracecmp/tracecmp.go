// Package tracecmp aligns and compares two flow recordings — NDJSON
// span traces or benchjson ledgers — into a Table-2-style per-stage
// delta report. It is the shared core of the tracediff CLI and tpid's
// in-service regression sentinel: both build a Side per recording and
// Diff them under the same -normalize / -max-regress semantics.
package tracecmp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"tpilayout/internal/telemetry"
)

// Key identifies one comparable cell: a flow stage at one TP level for
// traces, a benchmark name (TP = -1) for ledgers.
type Key struct {
	Stage string  `json:"stage"`
	TP    float64 `json:"tp"`
}

func (k Key) String() string {
	if k.TP < 0 {
		return k.Stage
	}
	return fmt.Sprintf("%s @ tp %.1f%%", k.Stage, k.TP)
}

// Cell is one side's aggregate for a key.
type Cell struct {
	DurNS    float64          // summed span durations (or ns/op for ledgers)
	CPUNS    float64          // summed process-CPU attribution, when the trace carries it
	N        int64            // spans (or benchmark iterations)
	Counters map[string]int64 // summed span counters
}

// Side is one loaded input: its cells plus the per-level run totals
// used by Options.Normalize.
type Side struct {
	Cells    map[Key]*Cell
	RunTotal map[float64]float64 // tp -> summed run-span ns
}

// sideJSON is the wire form of a Side: maps with struct / float keys
// don't round-trip through encoding/json, so cells flatten to a sorted
// list. Archived run rollups are stored in this shape.
type sideJSON struct {
	Cells []cellJSON `json:"cells"`
	Runs  []runJSON  `json:"run_totals"`
}

type cellJSON struct {
	Stage    string           `json:"stage"`
	TP       float64          `json:"tp"`
	DurNS    float64          `json:"dur_ns"`
	CPUNS    float64          `json:"cpu_ns,omitempty"`
	N        int64            `json:"n"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

type runJSON struct {
	TP    float64 `json:"tp"`
	DurNS float64 `json:"dur_ns"`
}

// MarshalJSON renders the side as sorted cell and run-total lists.
func (s *Side) MarshalJSON() ([]byte, error) {
	var out sideJSON
	for k, c := range s.Cells {
		out.Cells = append(out.Cells, cellJSON{Stage: k.Stage, TP: k.TP, DurNS: c.DurNS, CPUNS: c.CPUNS, N: c.N, Counters: c.Counters})
	}
	sort.Slice(out.Cells, func(i, j int) bool {
		if out.Cells[i].TP != out.Cells[j].TP {
			return out.Cells[i].TP < out.Cells[j].TP
		}
		return out.Cells[i].Stage < out.Cells[j].Stage
	})
	for tp, d := range s.RunTotal {
		out.Runs = append(out.Runs, runJSON{TP: tp, DurNS: d})
	}
	sort.Slice(out.Runs, func(i, j int) bool { return out.Runs[i].TP < out.Runs[j].TP })
	return json.Marshal(out)
}

// UnmarshalJSON reverses MarshalJSON.
func (s *Side) UnmarshalJSON(data []byte) error {
	var in sideJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	s.Cells = map[Key]*Cell{}
	s.RunTotal = map[float64]float64{}
	for _, c := range in.Cells {
		s.Cells[Key{c.Stage, c.TP}] = &Cell{DurNS: c.DurNS, CPUNS: c.CPUNS, N: c.N, Counters: c.Counters}
	}
	for _, r := range in.Runs {
		s.RunTotal[r.TP] = r.DurNS
	}
	return nil
}

// LoadTrace aggregates an NDJSON trace into per-(stage, TP) cells.
// The reader may be gzip-compressed (sniffed by magic bytes).
func LoadTrace(r io.Reader) (*Side, error) {
	rr, err := telemetry.SniffGzip(r)
	if err != nil {
		return nil, err
	}
	trace, err := telemetry.ParseTrace(rr)
	if err != nil {
		return nil, err
	}
	return FromTrace(trace)
}

// FromTrace builds a Side from a parsed trace: every run span and every
// direct stage child of a run span counts, summing durations, CPU and
// counters — repeated stages (timing-opt re-placement) fold into one
// cell, matching how tracestat tabulates.
func FromTrace(trace *telemetry.Trace) (*Side, error) {
	if !trace.Balanced() {
		return nil, fmt.Errorf("unbalanced trace (span ids %v)", trace.Unbalanced)
	}
	return FromSpans(trace.Spans)
}

// FromSpans builds a Side from reconstructed spans (already balanced).
func FromSpans(spans []telemetry.SpanRecord) (*Side, error) {
	runLevel := map[int64]float64{}
	s := &Side{Cells: map[Key]*Cell{}, RunTotal: map[float64]float64{}}
	for _, sp := range spans {
		if sp.Stage == "run" {
			runLevel[sp.ID] = sp.TPPercent
			s.RunTotal[sp.TPPercent] += float64(sp.Duration)
		}
	}
	if len(runLevel) == 0 {
		return nil, fmt.Errorf("no run spans in trace")
	}
	for _, sp := range spans {
		var k Key
		if sp.Stage == "run" {
			k = Key{"run", sp.TPPercent}
		} else if tp, ok := runLevel[sp.Parent]; ok {
			k = Key{sp.Stage, tp}
		} else {
			continue
		}
		c := s.Cells[k]
		if c == nil {
			c = &Cell{Counters: map[string]int64{}}
			s.Cells[k] = c
		}
		c.N++
		c.DurNS += float64(sp.Duration)
		c.CPUNS += float64(sp.CPUNS)
		for name, v := range sp.Counters {
			c.Counters[name] += v
		}
	}
	return s, nil
}

// LoadLedger reads one section of a benchjson ledger: each benchmark
// becomes a tp = -1 cell with ns/op as its duration and the metrics map
// as its counters (rounded — benchjson stores means).
func LoadLedger(r io.Reader, section string) (*Side, error) {
	type entry struct {
		Iterations int64              `json:"iterations"`
		NsPerOp    float64            `json:"ns_per_op"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	var ledger map[string]map[string]entry
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ledger); err != nil {
		return nil, fmt.Errorf("not a benchjson ledger: %w", err)
	}
	sec, ok := ledger[section]
	if !ok {
		var have []string
		for name := range ledger {
			have = append(have, name)
		}
		sort.Strings(have)
		return nil, fmt.Errorf("no section %q (have %s)", section, strings.Join(have, ", "))
	}
	s := &Side{Cells: map[Key]*Cell{}, RunTotal: map[float64]float64{}}
	for name, e := range sec {
		c := &Cell{DurNS: e.NsPerOp, N: e.Iterations, Counters: map[string]int64{}}
		for m, v := range e.Metrics {
			c.Counters[m] = int64(math.Round(v))
		}
		s.Cells[Key{name, -1}] = c
		s.RunTotal[-1] += e.NsPerOp
	}
	return s, nil
}

// Options control the comparison.
type Options struct {
	MaxRegressPct  float64       // duration regression gate, in percent
	HardRegressPct float64       // absolute-time backstop gate in Normalize mode (0 = off)
	MinDur         time.Duration // noise floor: smaller baseline cells never gate
	Normalize      bool          // compare share-of-run-total instead of absolute ns
}

// Row is one line of the delta report.
type Row struct {
	Key
	BaseNS    float64 // the compared values (ns, or shares ×100 when normalized)
	CurNS     float64
	DeltaPct  float64 // (cur-base)/base in percent; NaN when base == 0
	Regressed bool    // beyond the gate and above the noise floor
	Note      string  // "only in baseline" / "only in current" / counter deltas
}

// rowJSON keeps Row serializable: DeltaPct can be NaN/±Inf, which
// encoding/json rejects, so it renders as null in that case.
type rowJSON struct {
	Stage     string   `json:"stage"`
	TP        float64  `json:"tp"`
	BaseNS    float64  `json:"base_ns"`
	CurNS     float64  `json:"cur_ns"`
	DeltaPct  *float64 `json:"delta_pct"`
	Regressed bool     `json:"regressed,omitempty"`
	Note      string   `json:"note,omitempty"`
}

// MarshalJSON renders the row with a null delta when it is undefined.
func (r Row) MarshalJSON() ([]byte, error) {
	out := rowJSON{Stage: r.Stage, TP: r.TP, BaseNS: r.BaseNS, CurNS: r.CurNS, Regressed: r.Regressed, Note: r.Note}
	if !math.IsNaN(r.DeltaPct) && !math.IsInf(r.DeltaPct, 0) {
		d := r.DeltaPct
		out.DeltaPct = &d
	}
	return json.Marshal(out)
}

// UnmarshalJSON reverses MarshalJSON (null delta -> NaN).
func (r *Row) UnmarshalJSON(data []byte) error {
	var in rowJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*r = Row{Key: Key{in.Stage, in.TP}, BaseNS: in.BaseNS, CurNS: in.CurNS, DeltaPct: math.NaN(), Regressed: in.Regressed, Note: in.Note}
	if in.DeltaPct != nil {
		r.DeltaPct = *in.DeltaPct
	}
	return nil
}

// Report is the full comparison outcome.
type Report struct {
	Rows        []Row `json:"rows"`
	Regressions []Row `json:"regressions"`
	Normalized  bool  `json:"normalized"`
}

// value returns the comparable number for a cell: absolute summed ns,
// or — normalized — the cell's percent share of its level's run total.
func value(s *Side, k Key, c *Cell, normalize bool) float64 {
	if !normalize {
		return c.DurNS
	}
	total := s.RunTotal[k.TP]
	if k.Stage == "run" || total == 0 {
		// Run spans define the total; their share is 100 by construction.
		return 100
	}
	return 100 * c.DurNS / total
}

// Diff compares baseline and current side by side.
func Diff(base, cur *Side, opt Options) *Report {
	rep := &Report{Normalized: opt.Normalize}
	keys := map[Key]bool{}
	for k := range base.Cells {
		keys[k] = true
	}
	for k := range cur.Cells {
		keys[k] = true
	}
	ordered := make([]Key, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].TP != ordered[j].TP {
			return ordered[i].TP < ordered[j].TP
		}
		return ordered[i].Stage < ordered[j].Stage
	})

	for _, k := range ordered {
		b, inBase := base.Cells[k]
		c, inCur := cur.Cells[k]
		switch {
		case !inCur:
			rep.Rows = append(rep.Rows, Row{Key: k, BaseNS: value(base, k, b, opt.Normalize), DeltaPct: math.NaN(), Note: "only in baseline"})
			continue
		case !inBase:
			rep.Rows = append(rep.Rows, Row{Key: k, CurNS: value(cur, k, c, opt.Normalize), DeltaPct: math.NaN(), Note: "only in current"})
			continue
		}
		r := Row{
			Key:    k,
			BaseNS: value(base, k, b, opt.Normalize),
			CurNS:  value(cur, k, c, opt.Normalize),
		}
		if r.BaseNS != 0 {
			r.DeltaPct = 100 * (r.CurNS - r.BaseNS) / r.BaseNS
		} else if r.CurNS != 0 {
			r.DeltaPct = math.Inf(1)
		}
		// The gate: a duration regression beyond the threshold, on a cell
		// big enough to clear the noise floor (floor always measured on
		// absolute baseline time, even in -normalize mode).
		if r.DeltaPct > opt.MaxRegressPct && b.DurNS >= float64(opt.MinDur) {
			r.Regressed = true
		}
		r.Note = counterDelta(b.Counters, c.Counters)
		// -normalize backstop: a stage that dominates its run is share-
		// invariant (slowing it slows the run total too, and the ratio
		// cancels — exactly like a slower machine). An absolute slip
		// beyond the hard threshold is no host's jitter, so it gates even
		// when the share barely moved.
		if opt.Normalize && opt.HardRegressPct > 0 && !r.Regressed &&
			b.DurNS >= float64(opt.MinDur) && b.DurNS != 0 {
			absPct := 100 * (c.DurNS - b.DurNS) / b.DurNS
			if absPct > opt.HardRegressPct {
				r.Regressed = true
				note := fmt.Sprintf("absolute %s -> %s (%+.0f%%)", FmtDur(time.Duration(b.DurNS)), FmtDur(time.Duration(c.DurNS)), absPct)
				if r.Note != "" {
					note += ", " + r.Note
				}
				r.Note = note
			}
		}
		rep.Rows = append(rep.Rows, r)
		if r.Regressed {
			rep.Regressions = append(rep.Regressions, r)
		}
	}
	return rep
}

// counterDelta summarizes changed counters ("atpg.patterns 412->430"),
// empty when every shared counter matches.
func counterDelta(base, cur map[string]int64) string {
	names := map[string]bool{}
	for n := range base {
		names[n] = true
	}
	for n := range cur {
		names[n] = true
	}
	var changed []string
	for n := range names {
		if base[n] != cur[n] {
			changed = append(changed, fmt.Sprintf("%s %d->%d", n, base[n], cur[n]))
		}
	}
	sort.Strings(changed)
	return strings.Join(changed, ", ")
}

// Write renders the Table-2-style report: one row per stage × TP level,
// baseline and current columns, signed delta, and any counter drift.
func (rep *Report) Write(w io.Writer) {
	unit := "wall time"
	if rep.Normalized {
		unit = "share of run"
	}
	fmt.Fprintf(w, "%-24s %12s %12s %9s  %s\n", "stage", "baseline", "current", "delta", "notes")
	for _, r := range rep.Rows {
		mark := " "
		if r.Regressed {
			mark = "!"
		}
		fmt.Fprintf(w, "%s%-23s %12s %12s %9s  %s\n",
			mark, r.Key, rep.fmtVal(r.BaseNS), rep.fmtVal(r.CurNS), fmtDelta(r.DeltaPct), r.Note)
	}
	fmt.Fprintf(w, "\n%d cells compared (%s)", len(rep.Rows), unit)
	if len(rep.Regressions) == 0 {
		fmt.Fprint(w, ", no regressions beyond threshold\n")
		return
	}
	fmt.Fprintf(w, ", %d REGRESSION(S):\n", len(rep.Regressions))
	for _, r := range rep.Regressions {
		fmt.Fprintf(w, "  %s: %s -> %s (%+.1f%%)\n", r.Key, rep.fmtVal(r.BaseNS), rep.fmtVal(r.CurNS), r.DeltaPct)
	}
}

func (rep *Report) fmtVal(v float64) string {
	if rep.Normalized {
		return fmt.Sprintf("%.1f%%", v)
	}
	return FmtDur(time.Duration(v))
}

func fmtDelta(pct float64) string {
	if math.IsNaN(pct) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

// FmtDur renders a duration at table-friendly precision (tracestat's
// convention).
func FmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d >= time.Second || d <= -time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond || d <= -time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%dµs", d/time.Microsecond)
	}
}
