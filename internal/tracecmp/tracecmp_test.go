package tracecmp

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// synthTrace renders a balanced NDJSON trace: one run span per TP level
// with one child span per (stage, duration) pair. slow multiplies the
// named stage's duration, the "artificially slowed stage" fixture.
func synthTrace(levels []float64, stages map[string]time.Duration, slowStage string, slow float64) string {
	var sb strings.Builder
	id := int64(0)
	ts := int64(1_700_000_000_000_000_000)
	stamp := func(ns int64) string { return time.Unix(0, ns).UTC().Format(time.RFC3339Nano) }
	for _, tp := range levels {
		runID := id
		id++
		fmt.Fprintf(&sb, `{"ev":"span_start","id":%d,"stage":"run","tp":%g,"t":"%s"}`+"\n",
			runID, tp, stamp(ts))
		var total time.Duration
		// Stage order must be deterministic for stable span IDs.
		for _, st := range []string{"place", "atpg", "route"} {
			d := stages[st]
			if st == slowStage {
				d = time.Duration(float64(d) * slow)
			}
			total += d
			sid := id
			id++
			fmt.Fprintf(&sb, `{"ev":"span_start","id":%d,"parent":%d,"stage":"%s","tp":%g,"t":"%s"}`+"\n",
				sid, runID, st, tp, stamp(ts))
			fmt.Fprintf(&sb, `{"ev":"span_end","id":%d,"parent":%d,"stage":"%s","tp":%g,"t":"%s","dur_ns":%d,"counters":{"%s.work":%d}}`+"\n",
				sid, runID, st, tp, stamp(ts+int64(d)), int64(d), st, 100)
		}
		fmt.Fprintf(&sb, `{"ev":"span_end","id":%d,"stage":"run","tp":%g,"t":"%s","dur_ns":%d}`+"\n",
			runID, tp, stamp(ts+int64(total)), int64(total))
	}
	return sb.String()
}

var baseStages = map[string]time.Duration{
	"place": 400 * time.Millisecond,
	"atpg":  900 * time.Millisecond,
	"route": 200 * time.Millisecond,
}

func TestDiffIdenticalTraces(t *testing.T) {
	text := synthTrace([]float64{0, 1}, baseStages, "", 1)
	base, err := LoadTrace(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := LoadTrace(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(base, cur, Options{MaxRegressPct: 25})
	if len(rep.Regressions) != 0 {
		t.Fatalf("identical traces regressed: %+v", rep.Regressions)
	}
	// 2 levels × (3 stages + run).
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.DeltaPct != 0 || r.Note != "" {
			t.Errorf("row %s: delta %.1f%%, note %q", r.Key, r.DeltaPct, r.Note)
		}
	}
}

func TestDiffFlagsSlowedStage(t *testing.T) {
	base, _ := LoadTrace(strings.NewReader(synthTrace([]float64{0, 1}, baseStages, "", 1)))
	cur, _ := LoadTrace(strings.NewReader(synthTrace([]float64{0, 1}, baseStages, "atpg", 1.6)))
	rep := Diff(base, cur, Options{MaxRegressPct: 25, MinDur: 100 * time.Millisecond})
	// The slowed stage gates at both levels; the run spans containing it
	// regress past 25% too (900ms of 1.5s grew 1.6x) and are also named.
	seen := map[string]bool{}
	for _, r := range rep.Regressions {
		if r.Stage != "atpg" && r.Stage != "run" {
			t.Errorf("flagged %s, want only atpg and its runs", r.Key)
		}
		seen[r.Key.String()] = true
		if r.Stage == "atpg" && (r.DeltaPct < 59 || r.DeltaPct > 61) {
			t.Errorf("%s delta = %.1f%%, want ~60%%", r.Key, r.DeltaPct)
		}
	}
	if !seen["atpg @ tp 0.0%"] || !seen["atpg @ tp 1.0%"] {
		t.Fatalf("regressions = %+v, want atpg at both levels", rep.Regressions)
	}
	if !seen["atpg @ tp 1.0%"] {
		t.Errorf("regression keys %v missing atpg @ tp 1.0%%", seen)
	}
	// The report names the stage and level on its regression lines.
	var sb strings.Builder
	rep.Write(&sb)
	if !strings.Contains(sb.String(), "REGRESSION") || !strings.Contains(sb.String(), "atpg @ tp 1.0%") {
		t.Fatalf("report missing regression naming:\n%s", sb.String())
	}
}

func TestDiffNoiseFloorSuppresses(t *testing.T) {
	base, _ := LoadTrace(strings.NewReader(synthTrace([]float64{0}, baseStages, "", 1)))
	cur, _ := LoadTrace(strings.NewReader(synthTrace([]float64{0}, baseStages, "route", 2)))
	// route doubled, but its 200ms baseline sits below the 300ms floor.
	rep := Diff(base, cur, Options{MaxRegressPct: 25, MinDur: 300 * time.Millisecond})
	if len(rep.Regressions) != 0 {
		t.Fatalf("noise floor did not suppress: %+v", rep.Regressions)
	}
	// Without the floor it gates.
	rep = Diff(base, cur, Options{MaxRegressPct: 25})
	if len(rep.Regressions) != 1 || rep.Regressions[0].Stage != "route" {
		t.Fatalf("expected route regression, got %+v", rep.Regressions)
	}
}

func TestDiffNormalizeCancelsUniformSlowdown(t *testing.T) {
	// Current machine is uniformly 2x slower: every absolute duration
	// doubles, every share stays identical.
	slowAll := map[string]time.Duration{}
	for st, d := range baseStages {
		slowAll[st] = 2 * d
	}
	base, _ := LoadTrace(strings.NewReader(synthTrace([]float64{0}, baseStages, "", 1)))
	cur, _ := LoadTrace(strings.NewReader(synthTrace([]float64{0}, slowAll, "", 1)))
	if rep := Diff(base, cur, Options{MaxRegressPct: 25}); len(rep.Regressions) != 4 {
		t.Fatalf("absolute mode should flag all 3 stages plus the run, got %+v", rep.Regressions)
	}
	if rep := Diff(base, cur, Options{MaxRegressPct: 25, Normalize: true}); len(rep.Regressions) != 0 {
		t.Fatalf("normalize should cancel a uniform slowdown, got %+v", rep.Regressions)
	}
	// A genuine shape change still shows through -Normalize: atpg's
	// share climbs from 60% to ~79%, +32% relative.
	cur2, _ := LoadTrace(strings.NewReader(synthTrace([]float64{0}, slowAll, "atpg", 2.5)))
	rep := Diff(base, cur2, Options{MaxRegressPct: 25, Normalize: true})
	if len(rep.Regressions) != 1 || rep.Regressions[0].Stage != "atpg" {
		t.Fatalf("normalized diff missed the shape change: %+v", rep.Regressions)
	}
}

func TestDiffHardRegressBackstop(t *testing.T) {
	// A dominant stage is share-invariant: atpg at 90% of its run can
	// triple and its share moves a few percent — -normalize alone never
	// gates. The absolute backstop catches it.
	dominant := map[string]time.Duration{
		"place": 50 * time.Millisecond,
		"atpg":  9 * time.Second,
		"route": 50 * time.Millisecond,
	}
	base, _ := LoadTrace(strings.NewReader(synthTrace([]float64{0}, dominant, "", 1)))
	cur, _ := LoadTrace(strings.NewReader(synthTrace([]float64{0}, dominant, "atpg", 3)))
	if rep := Diff(base, cur, Options{MaxRegressPct: 25, MinDur: 100 * time.Millisecond, Normalize: true}); len(rep.Regressions) != 0 {
		t.Fatalf("share gate alone should miss a dominant-stage slip, got %+v", rep.Regressions)
	}
	rep := Diff(base, cur, Options{MaxRegressPct: 25, HardRegressPct: 150, MinDur: 100 * time.Millisecond, Normalize: true})
	// The run span containing the slip regresses absolutely too (same
	// convention as unnormalized mode).
	var atpgNote string
	for _, r := range rep.Regressions {
		if r.Stage != "atpg" && r.Stage != "run" {
			t.Errorf("backstop flagged %s, want only atpg and its run", r.Key)
		}
		if r.Stage == "atpg" {
			atpgNote = r.Note
		}
	}
	if atpgNote == "" {
		t.Fatalf("backstop missed the dominant-stage slip: %+v", rep.Regressions)
	}
	if !strings.Contains(atpgNote, "absolute") || !strings.Contains(atpgNote, "+200%") {
		t.Errorf("backstop note = %q, want absolute +200%% explanation", atpgNote)
	}
	// A 2x machine (uniform slowdown, under the 150%% backstop) still
	// passes — the backstop threshold sits above host jitter.
	slowAll := map[string]time.Duration{}
	for st, d := range dominant {
		slowAll[st] = 2 * d
	}
	cur2, _ := LoadTrace(strings.NewReader(synthTrace([]float64{0}, slowAll, "", 1)))
	if rep := Diff(base, cur2, Options{MaxRegressPct: 25, HardRegressPct: 150, MinDur: 100 * time.Millisecond, Normalize: true}); len(rep.Regressions) != 0 {
		t.Fatalf("backstop gated a uniform 2x slowdown: %+v", rep.Regressions)
	}
}

func TestDiffCounterDrift(t *testing.T) {
	text := synthTrace([]float64{0}, baseStages, "", 1)
	base, _ := LoadTrace(strings.NewReader(text))
	cur, _ := LoadTrace(strings.NewReader(strings.ReplaceAll(text, `"atpg.work":100`, `"atpg.work":140`)))
	rep := Diff(base, cur, Options{MaxRegressPct: 25})
	var note string
	for _, r := range rep.Rows {
		if r.Stage == "atpg" {
			note = r.Note
		}
	}
	if note != "atpg.work 100->140" {
		t.Fatalf("counter drift note = %q", note)
	}
	if len(rep.Regressions) != 0 {
		t.Fatal("counter drift must not gate on its own")
	}
}

func TestLoadLedger(t *testing.T) {
	ledger := `{
	  "table1": {
	    "BenchmarkTable1_S38417": {"iterations": 5, "ns_per_op": 2e9, "metrics": {"patterns": 412}},
	    "Stage/atpg": {"iterations": 6, "ns_per_op": 9e8}
	  }
	}`
	s, err := LoadLedger(strings.NewReader(ledger), "table1")
	if err != nil {
		t.Fatal(err)
	}
	c := s.Cells[Key{"BenchmarkTable1_S38417", -1}]
	if c == nil || c.DurNS != 2e9 || c.Counters["patterns"] != 412 {
		t.Fatalf("ledger cell = %+v", c)
	}
	if _, err := LoadLedger(strings.NewReader(ledger), "missing"); err == nil ||
		!strings.Contains(err.Error(), "table1") {
		t.Fatalf("missing-section error should list sections, got %v", err)
	}
	if _, err := LoadLedger(strings.NewReader("not json"), "x"); err == nil {
		t.Fatal("garbage ledger accepted")
	}
}
