// Package trachive is tpid's run-history trace archive: when a run
// retires, the service persists its full span trace (gzip NDJSON), its
// stage×level rollup, and its metadata into <data-dir>/runs/, indexed
// by a crash-safe journal (internal/journal) so a SIGKILL between the
// trace write and the index append costs at most that one run. The
// archive is the substrate of the regression sentinel: each retiring
// run is diffed against the most recent archived run sharing its
// baseline key (circuit hash, config hash, sweep mode).
//
// On-disk layout under the archive directory:
//
//	index/            journal of archived/evicted records + snapshots
//	<run_id>.trace.ndjson.gz   the run's full event stream
//	<run_id>.pprof             optional per-run CPU profile
//
// Artifact files are written tmp+rename before the index append, so
// the journal never references a torn file; conversely an artifact
// whose index append was lost is an orphan and Open deletes it.
// Retention is budgeted by bytes and run count, evicting oldest first
// but never the newest run.
package trachive

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"tpilayout/internal/journal"
	"tpilayout/internal/telemetry"
	"tpilayout/internal/tracecmp"
)

// Journal record types private to the archive index (the journal treats
// payloads as opaque; types 1–5 belong to the service's job journal).
const (
	typeArchived journal.Type = 10 // payload: JSON Meta
	typeEvicted  journal.Type = 11 // payload: run_id bytes
)

// DiffSummary is the sentinel's verdict for one archived run, stored in
// its Meta and served at /v1/runs/{id}.
type DiffSummary struct {
	// Against is the baseline run's run_id ("" when Verdict is
	// "no-baseline").
	Against string `json:"against,omitempty"`
	// Verdict is "no-regression", "regression", or "no-baseline".
	Verdict string `json:"verdict"`
	// Cells is how many stage×level cells were compared.
	Cells int `json:"cells,omitempty"`
	// Regressions holds the gated rows (empty on a clean diff).
	Regressions []tracecmp.Row `json:"regressions,omitempty"`
}

// Meta is one archived run's metadata — everything the query API can
// filter or report without opening the trace file.
type Meta struct {
	RunID        string         `json:"run_id"`
	JobIDs       []string       `json:"job_ids,omitempty"`
	Tenant       string         `json:"tenant,omitempty"`
	Circuit      string         `json:"circuit,omitempty"`
	CircuitHash  string         `json:"circuit_hash"`
	ConfigHash   string         `json:"config_hash"`
	SweepMode    string         `json:"sweep_mode,omitempty"`
	BaselineKey  string         `json:"baseline_key"`
	State        string         `json:"state"`
	Error        string         `json:"error,omitempty"`
	TPLevels     []float64      `json:"tp_levels,omitempty"`
	Started      time.Time      `json:"started"`
	Finished     time.Time      `json:"finished"`
	WallMS       int64          `json:"wall_ms"`
	CPUMS        int64          `json:"cpu_ms,omitempty"`
	Events       int            `json:"events,omitempty"`
	TraceBytes   int64          `json:"trace_bytes"`
	ProfileBytes int64          `json:"profile_bytes,omitempty"`
	Rollup       *tracecmp.Side `json:"rollup,omitempty"`
	Diff         *DiffSummary   `json:"diff,omitempty"`
	// Seq is the archive-order sequence number (assigned at Put); higher
	// is newer. Baseline lookup and eviction order ride on it.
	Seq uint64 `json:"seq"`
}

// Options configures an Archive.
type Options struct {
	// BudgetBytes caps the summed size of archived artifacts; 0 means
	// 512 MiB, negative disables the byte budget.
	BudgetBytes int64
	// MaxRuns caps the number of retained runs; 0 means 512, negative
	// disables the count budget.
	MaxRuns int
	// NoSync skips index fsyncs (tests only).
	NoSync bool
	// CompactBytes is the index-size threshold that triggers snapshot
	// compaction (default 1 MiB).
	CompactBytes int64
}

// Archive is an open run-history store. Safe for concurrent use.
type Archive struct {
	dir string
	opt Options

	mu      sync.Mutex
	jrnl    *journal.Journal
	runs    map[string]*Meta
	order   []string // run IDs by ascending Seq (eviction order)
	seq     uint64
	bytes   int64 // summed artifact bytes of retained runs
	evicted int64 // lifetime eviction count (since Open)
	dropped int64 // index entries dropped at Open for missing files
}

// snapState is the index snapshot written at compaction.
type snapState struct {
	Seq  uint64  `json:"seq"`
	Runs []*Meta `json:"runs"`
}

// Open replays the archive index in dir (creating the directory if
// needed), drops entries whose trace file is missing (a crash between
// eviction's file removal and its index append), and deletes orphaned
// artifact files the index does not reference (a crash between an
// artifact write and its index append).
func Open(dir string, opt Options) (*Archive, error) {
	if opt.BudgetBytes == 0 {
		opt.BudgetBytes = 512 << 20
	}
	if opt.MaxRuns == 0 {
		opt.MaxRuns = 512
	}
	if opt.CompactBytes <= 0 {
		opt.CompactBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trachive: %w", err)
	}
	jrnl, records, err := journal.Open(filepath.Join(dir, "index"), journal.Options{NoSync: opt.NoSync})
	if err != nil {
		return nil, fmt.Errorf("trachive: %w", err)
	}
	a := &Archive{dir: dir, opt: opt, jrnl: jrnl, runs: map[string]*Meta{}}
	for _, rec := range records {
		switch rec.Type {
		case journal.TypeSnapshot:
			var st snapState
			if err := json.Unmarshal(rec.Data, &st); err != nil {
				jrnl.Close()
				return nil, fmt.Errorf("trachive: corrupt snapshot: %w", err)
			}
			a.runs = map[string]*Meta{}
			a.seq = st.Seq
			for _, m := range st.Runs {
				a.runs[m.RunID] = m
			}
		case typeArchived:
			var m Meta
			if err := json.Unmarshal(rec.Data, &m); err != nil {
				jrnl.Close()
				return nil, fmt.Errorf("trachive: corrupt index record: %w", err)
			}
			a.runs[m.RunID] = &m
			if m.Seq > a.seq {
				a.seq = m.Seq
			}
		case typeEvicted:
			delete(a.runs, string(rec.Data))
		}
	}
	// An index entry whose trace file is gone cannot be served: drop it.
	for id, m := range a.runs {
		if _, err := os.Stat(a.tracePath(id)); err != nil {
			delete(a.runs, id)
			a.dropped++
			continue
		}
		_ = m
	}
	a.rebuildOrderLocked()
	// Artifact files the index does not reference are orphans from a
	// crash mid-Put (or temp files): delete them.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			name := e.Name()
			var id string
			switch {
			case strings.HasSuffix(name, ".tmp"):
				os.Remove(filepath.Join(dir, name))
				continue
			case strings.HasSuffix(name, traceSuffix):
				id = strings.TrimSuffix(name, traceSuffix)
			case strings.HasSuffix(name, profileSuffix):
				id = strings.TrimSuffix(name, profileSuffix)
			default:
				continue
			}
			if _, ok := a.runs[id]; !ok {
				os.Remove(filepath.Join(dir, name))
			}
		}
	}
	return a, nil
}

const (
	traceSuffix   = ".trace.ndjson.gz"
	profileSuffix = ".pprof"
)

func (a *Archive) tracePath(runID string) string {
	return filepath.Join(a.dir, runID+traceSuffix)
}

func (a *Archive) profilePath(runID string) string {
	return filepath.Join(a.dir, runID+profileSuffix)
}

// rebuildOrderLocked recomputes eviction order and the byte total from
// the live run set.
func (a *Archive) rebuildOrderLocked() {
	a.order = a.order[:0]
	a.bytes = 0
	for id, m := range a.runs {
		a.order = append(a.order, id)
		a.bytes += m.TraceBytes + m.ProfileBytes
	}
	sort.Slice(a.order, func(i, j int) bool { return a.runs[a.order[i]].Seq < a.runs[a.order[j]].Seq })
}

// Put archives one run: the trace is gzipped to disk, the optional
// profile written beside it, and the meta appended to the index — in
// that order, so the index never references a missing file. The
// archive takes ownership of meta (Seq and size fields are filled in).
// A re-archived run_id (a crash-replayed run retiring again) replaces
// its previous entry. Retention is enforced before returning.
func (a *Archive) Put(meta *Meta, events []telemetry.Event, profile []byte) error {
	if meta.RunID == "" {
		return fmt.Errorf("trachive: empty run_id")
	}
	n, err := a.writeTrace(meta.RunID, events)
	if err != nil {
		return err
	}
	meta.Events = len(events)
	meta.TraceBytes = n
	meta.ProfileBytes = 0
	if len(profile) > 0 {
		if err := writeFileDurable(a.profilePath(meta.RunID), profile); err != nil {
			return err
		}
		meta.ProfileBytes = int64(len(profile))
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.runs[meta.RunID]; ok && meta.ProfileBytes == 0 {
		// The replacement has no profile: drop the stale one.
		os.Remove(a.profilePath(meta.RunID))
	}
	a.seq++
	meta.Seq = a.seq
	data, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("trachive: %w", err)
	}
	if err := a.jrnl.Append(typeArchived, data); err != nil {
		// The artifact stays on disk as an orphan; the next Open cleans
		// it up. The in-memory index stays consistent with the journal.
		return err
	}
	_, existed := a.runs[meta.RunID]
	a.runs[meta.RunID] = meta
	if existed {
		// The fresh Seq moves the replaced entry to the tail; the byte
		// total is recomputed over the new entry set.
		a.rebuildOrderLocked()
	} else {
		a.order = append(a.order, meta.RunID)
		a.bytes += meta.TraceBytes + meta.ProfileBytes
	}
	if err := a.enforceRetentionLocked(); err != nil {
		return err
	}
	if a.jrnl.Size() >= a.opt.CompactBytes {
		a.compactLocked()
	}
	return nil
}

// writeTrace streams events as gzip NDJSON via tmp+rename.
func (a *Archive) writeTrace(runID string, events []telemetry.Event) (int64, error) {
	tmp := a.tracePath(runID) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("trachive: %w", err)
	}
	gz := gzip.NewWriter(f)
	enc := json.NewEncoder(gz) // Encode appends the newline NDJSON needs
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			f.Close()
			os.Remove(tmp)
			return 0, fmt.Errorf("trachive: %w", err)
		}
	}
	if err := gz.Close(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("trachive: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("trachive: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("trachive: %w", err)
	}
	fi, err := os.Stat(tmp)
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("trachive: %w", err)
	}
	if err := os.Rename(tmp, a.tracePath(runID)); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("trachive: %w", err)
	}
	return fi.Size(), nil
}

func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("trachive: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("trachive: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("trachive: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trachive: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trachive: %w", err)
	}
	return nil
}

// enforceRetentionLocked evicts oldest-first until both budgets hold,
// always keeping the newest run: a single oversized run is better
// retained than an empty archive.
func (a *Archive) enforceRetentionLocked() error {
	for len(a.order) > 1 {
		over := (a.opt.MaxRuns > 0 && len(a.order) > a.opt.MaxRuns) ||
			(a.opt.BudgetBytes > 0 && a.bytes > a.opt.BudgetBytes)
		if !over {
			return nil
		}
		id := a.order[0]
		m := a.runs[id]
		// Files first, index second: a crash in between leaves an index
		// entry with a missing file, which Open drops — never a live
		// entry pointing at freed space that retention still counts.
		os.Remove(a.tracePath(id))
		os.Remove(a.profilePath(id))
		if err := a.jrnl.Append(typeEvicted, []byte(id)); err != nil {
			return err
		}
		a.order = a.order[1:]
		a.bytes -= m.TraceBytes + m.ProfileBytes
		delete(a.runs, id)
		a.evicted++
	}
	return nil
}

// compactLocked folds the index into one snapshot record; best effort
// (a failed compaction leaves the segments in place).
func (a *Archive) compactLocked() {
	st := snapState{Seq: a.seq, Runs: make([]*Meta, 0, len(a.order))}
	for _, id := range a.order {
		st.Runs = append(st.Runs, a.runs[id])
	}
	if data, err := json.Marshal(&st); err == nil {
		a.jrnl.Compact(data)
	}
}

// Get returns the archived meta for one run.
func (a *Archive) Get(runID string) (*Meta, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.runs[runID]
	return m, ok
}

// OpenTrace opens the archived gzip NDJSON trace for streaming.
func (a *Archive) OpenTrace(runID string) (*os.File, error) {
	a.mu.Lock()
	_, ok := a.runs[runID]
	a.mu.Unlock()
	if !ok {
		return nil, os.ErrNotExist
	}
	return os.Open(a.tracePath(runID))
}

// OpenProfile opens the archived per-run CPU profile, os.ErrNotExist
// when the run was archived without one.
func (a *Archive) OpenProfile(runID string) (*os.File, error) {
	a.mu.Lock()
	m, ok := a.runs[runID]
	a.mu.Unlock()
	if !ok || m.ProfileBytes == 0 {
		return nil, os.ErrNotExist
	}
	return os.Open(a.profilePath(runID))
}

// Filter selects archived runs. Hash fields match by prefix so clients
// can use the short forms the API reports.
type Filter struct {
	Circuit  string    // circuit hash prefix
	Config   string    // config hash prefix
	Tenant   string    // exact tenant
	State    string    // exact terminal state
	Baseline string    // exact baseline key
	Since    time.Time // runs finished at/after this instant
	Limit    int       // max results (0 = all)
}

func (f Filter) match(m *Meta) bool {
	if f.Circuit != "" && !strings.HasPrefix(m.CircuitHash, f.Circuit) {
		return false
	}
	if f.Config != "" && !strings.HasPrefix(m.ConfigHash, f.Config) {
		return false
	}
	if f.Tenant != "" && m.Tenant != f.Tenant {
		return false
	}
	if f.State != "" && m.State != f.State {
		return false
	}
	if f.Baseline != "" && m.BaselineKey != f.Baseline {
		return false
	}
	if !f.Since.IsZero() && m.Finished.Before(f.Since) {
		return false
	}
	return true
}

// List returns matching runs, newest first.
func (a *Archive) List(f Filter) []*Meta {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []*Meta
	for i := len(a.order) - 1; i >= 0; i-- {
		m := a.runs[a.order[i]]
		if !f.match(m) {
			continue
		}
		out = append(out, m)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Baseline returns the newest archived run with the given baseline key
// that completed ("done" with a rollup) strictly before seq (0 = before
// anything newer, i.e. the newest overall). It is the sentinel's
// baseline lookup: call it with the retiring run's prospective position
// (or 0 before Put) to diff against the previous completed run.
func (a *Archive) Baseline(key string, beforeSeq uint64) (*Meta, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := len(a.order) - 1; i >= 0; i-- {
		m := a.runs[a.order[i]]
		if beforeSeq > 0 && m.Seq >= beforeSeq {
			continue
		}
		if m.BaselineKey == key && m.State == "done" && m.Rollup != nil {
			return m, true
		}
	}
	return nil, false
}

// RollupCell is one stage×level latency summary aggregated across the
// retained runs of a baseline key.
type RollupCell struct {
	Stage     string  `json:"stage"`
	TP        float64 `json:"tp"`
	Runs      int     `json:"runs"`
	MeanNS    float64 `json:"mean_ns"`
	P50NS     float64 `json:"p50_ns"`
	P99NS     float64 `json:"p99_ns"`
	CPUMeanNS float64 `json:"cpu_mean_ns,omitempty"`
}

// Rollup aggregates cross-run P50/P99 stage latencies over the retained
// completed runs sharing a baseline key, sorted by level then stage.
func (a *Archive) Rollup(key string) []RollupCell {
	a.mu.Lock()
	defer a.mu.Unlock()
	hists := map[tracecmp.Key]*telemetry.HistData{}
	cpu := map[tracecmp.Key]float64{}
	runs := map[tracecmp.Key]int{}
	for _, id := range a.order {
		m := a.runs[id]
		if m.BaselineKey != key || m.State != "done" || m.Rollup == nil {
			continue
		}
		for k, c := range m.Rollup.Cells {
			h := hists[k]
			if h == nil {
				h = &telemetry.HistData{}
				hists[k] = h
			}
			h.Merge(telemetry.Observation(int64(c.DurNS)))
			cpu[k] += c.CPUNS
			runs[k]++
		}
	}
	out := make([]RollupCell, 0, len(hists))
	for k, h := range hists {
		c := RollupCell{
			Stage: k.Stage, TP: k.TP, Runs: runs[k],
			MeanNS: h.Mean(), P50NS: h.Quantile(0.5), P99NS: h.Quantile(0.99),
		}
		if runs[k] > 0 {
			c.CPUMeanNS = cpu[k] / float64(runs[k])
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TP != out[j].TP {
			return out[i].TP < out[j].TP
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// BaselineInfo summarizes one baseline key's retained history: how many
// runs share it, how many completed (and thus feed rollups and baseline
// lookups), and the newest run carrying it.
type BaselineInfo struct {
	Key       string `json:"key"`
	Circuit   string `json:"circuit,omitempty"`
	SweepMode string `json:"sweep_mode,omitempty"`
	Runs      int    `json:"runs"`
	Completed int    `json:"completed"`
	Latest    string `json:"latest_run_id"`
}

// Baselines lists the distinct baseline keys across retained runs,
// sorted by key for stable output.
func (a *Archive) Baselines() []BaselineInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	byKey := map[string]*BaselineInfo{}
	for _, id := range a.order { // ascending Seq: the last writer is newest
		m := a.runs[id]
		bi := byKey[m.BaselineKey]
		if bi == nil {
			bi = &BaselineInfo{Key: m.BaselineKey}
			byKey[m.BaselineKey] = bi
		}
		bi.Circuit = m.Circuit
		bi.SweepMode = m.SweepMode
		bi.Latest = m.RunID
		bi.Runs++
		if m.State == "done" && m.Rollup != nil {
			bi.Completed++
		}
	}
	out := make([]BaselineInfo, 0, len(byKey))
	for _, bi := range byKey {
		out = append(out, *bi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Stats reports the archive's retention state.
type Stats struct {
	Runs    int   `json:"runs"`
	Bytes   int64 `json:"bytes"`
	Evicted int64 `json:"evicted"`
	Dropped int64 `json:"dropped"`
}

// Stats returns current retention counters.
func (a *Archive) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{Runs: len(a.order), Bytes: a.bytes, Evicted: a.evicted, Dropped: a.dropped}
}

// Close closes the index journal. Artifact files need no teardown.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.jrnl.Close()
}
