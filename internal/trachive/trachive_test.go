package trachive

import (
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tpilayout/internal/telemetry"
	"tpilayout/internal/tracecmp"
)

// runEvents builds a minimal balanced run trace: one run span at tp
// with one tpi stage child.
func runEvents(tp float64, stageNS int64) []telemetry.Event {
	t0 := time.Unix(0, 0)
	return []telemetry.Event{
		{Type: telemetry.EventSpanStart, ID: 1, Stage: "run", TPPercent: tp, Time: t0},
		{Type: telemetry.EventSpanStart, ID: 2, Parent: 1, Stage: "tpi", TPPercent: tp, Time: t0},
		{Type: telemetry.EventSpanEnd, ID: 2, Parent: 1, Stage: "tpi", TPPercent: tp, Time: t0, DurNS: stageNS, CPUNS: stageNS / 2},
		{Type: telemetry.EventSpanEnd, ID: 1, Stage: "run", TPPercent: tp, Time: t0, DurNS: 2 * stageNS},
	}
}

func rollupOf(t *testing.T, events []telemetry.Event) *tracecmp.Side {
	t.Helper()
	tr := telemetry.TraceFromEvents(events)
	if !tr.Balanced() {
		t.Fatalf("test events unbalanced: %v", tr.Unbalanced)
	}
	side, err := tracecmp.FromSpans(tr.Spans)
	if err != nil {
		t.Fatalf("FromSpans: %v", err)
	}
	return side
}

func metaFor(runID, key, state string, events []telemetry.Event) *Meta {
	m := &Meta{
		RunID:       runID,
		Tenant:      "t1",
		Circuit:     "c1",
		CircuitHash: "aaaa",
		ConfigHash:  "bbbb",
		SweepMode:   "full",
		BaselineKey: key,
		State:       state,
		Started:     time.Unix(100, 0),
		Finished:    time.Unix(101, 0),
	}
	return m
}

func openT(t *testing.T, dir string) *Archive {
	t.Helper()
	a, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return a
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir)
	defer a.Close()

	events := runEvents(1, 5e8)
	m := metaFor("r1", "k1", "done", events)
	m.Rollup = rollupOf(t, events)
	profile := []byte("pprof-bytes")
	if err := a.Put(m, events, profile); err != nil {
		t.Fatalf("Put: %v", err)
	}

	got, ok := a.Get("r1")
	if !ok {
		t.Fatal("Get r1: not found")
	}
	if got.Events != len(events) || got.TraceBytes == 0 || got.ProfileBytes != int64(len(profile)) {
		t.Fatalf("meta sizes: events=%d trace=%d profile=%d", got.Events, got.TraceBytes, got.ProfileBytes)
	}

	// The archived trace is valid gzip NDJSON that parses balanced.
	f, err := a.OpenTrace("r1")
	if err != nil {
		t.Fatalf("OpenTrace: %v", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("not gzip: %v", err)
	}
	tr, err := telemetry.ParseTrace(gz)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if !tr.Balanced() || len(tr.Events) != len(events) {
		t.Fatalf("parsed trace: balanced=%v events=%d want %d", tr.Balanced(), len(tr.Events), len(events))
	}

	pf, err := a.OpenProfile("r1")
	if err != nil {
		t.Fatalf("OpenProfile: %v", err)
	}
	buf := make([]byte, len(profile)+1)
	n, _ := pf.Read(buf)
	pf.Close()
	if string(buf[:n]) != string(profile) {
		t.Fatalf("profile bytes: got %q", buf[:n])
	}

	if _, err := a.OpenProfile("r-none"); !os.IsNotExist(err) {
		t.Fatalf("OpenProfile missing run: err=%v", err)
	}
}

// TestRecoverWithoutClose simulates a SIGKILL: the first archive is
// abandoned (no Close, journal not compacted) and a fresh Open on the
// same directory must recover every archived run.
func TestRecoverWithoutClose(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir)
	events := runEvents(1, 5e8)
	for i := 0; i < 3; i++ {
		m := metaFor(fmt.Sprintf("r%d", i), "k1", "done", events)
		m.Rollup = rollupOf(t, events)
		if err := a.Put(m, events, nil); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// No Close: drop the handle like a killed process would.

	b := openT(t, dir)
	defer b.Close()
	for i := 0; i < 3; i++ {
		if _, ok := b.Get(fmt.Sprintf("r%d", i)); !ok {
			t.Fatalf("run r%d lost across reopen", i)
		}
	}
	if st := b.Stats(); st.Runs != 3 || st.Dropped != 0 {
		t.Fatalf("stats after reopen: %+v", st)
	}
	// Baseline lookup survives the reopen (Seq order intact).
	base, ok := b.Baseline("k1", 0)
	if !ok || base.RunID != "r2" {
		t.Fatalf("baseline after reopen: %+v ok=%v", base, ok)
	}
}

// TestReopenDropsTornEntries: an index entry whose trace file vanished
// (crash between eviction's unlink and its index append) is dropped at
// Open, and unreferenced artifact files are deleted as orphans.
func TestReopenDropsTornEntries(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir)
	events := runEvents(1, 5e8)
	for _, id := range []string{"r1", "r2"} {
		if err := a.Put(metaFor(id, "k1", "done", events), events, nil); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Tear r1: remove its trace file behind the archive's back.
	os.Remove(filepath.Join(dir, "r1"+traceSuffix))
	// Plant an orphan trace, an orphan profile, and a stale temp file.
	os.WriteFile(filepath.Join(dir, "ghost"+traceSuffix), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "ghost"+profileSuffix), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "r9"+traceSuffix+".tmp"), []byte("x"), 0o644)

	b := openT(t, dir)
	defer b.Close()
	if _, ok := b.Get("r1"); ok {
		t.Fatal("torn r1 still served")
	}
	if _, ok := b.Get("r2"); !ok {
		t.Fatal("intact r2 lost")
	}
	st := b.Stats()
	if st.Runs != 1 || st.Dropped != 1 {
		t.Fatalf("stats: %+v", st)
	}
	for _, name := range []string{"ghost" + traceSuffix, "ghost" + profileSuffix, "r9" + traceSuffix + ".tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s not cleaned", name)
		}
	}
}

func TestRetentionByCount(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{NoSync: true, MaxRuns: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer a.Close()
	events := runEvents(1, 5e8)
	for i := 0; i < 4; i++ {
		if err := a.Put(metaFor(fmt.Sprintf("r%d", i), "k1", "done", events), events, nil); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Oldest-first eviction: r0 and r1 are gone, r2 and r3 retained.
	for i, want := range []bool{false, false, true, true} {
		_, ok := a.Get(fmt.Sprintf("r%d", i))
		if ok != want {
			t.Fatalf("r%d retained=%v want %v", i, ok, want)
		}
	}
	// Evicted runs' files are removed from disk.
	if _, err := os.Stat(filepath.Join(dir, "r0"+traceSuffix)); !os.IsNotExist(err) {
		t.Fatal("evicted r0 trace still on disk")
	}
	if st := a.Stats(); st.Runs != 2 || st.Evicted != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRetentionByBytesKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	// A budget smaller than any single trace: every Put evicts its
	// predecessor, but the newest run always survives.
	a, err := Open(dir, Options{NoSync: true, BudgetBytes: 1, MaxRuns: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer a.Close()
	events := runEvents(1, 5e8)
	for i := 0; i < 3; i++ {
		if err := a.Put(metaFor(fmt.Sprintf("r%d", i), "k1", "done", events), events, nil); err != nil {
			t.Fatalf("Put: %v", err)
		}
		st := a.Stats()
		if st.Runs != 1 {
			t.Fatalf("after put %d: runs=%d want 1", i, st.Runs)
		}
		if _, ok := a.Get(fmt.Sprintf("r%d", i)); !ok {
			t.Fatalf("newest r%d evicted", i)
		}
	}
}

func TestListFilters(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir)
	defer a.Close()
	events := runEvents(1, 5e8)
	put := func(id, circ, cfg, tenant, state, key string, fin time.Time) {
		m := metaFor(id, key, state, events)
		m.CircuitHash = circ
		m.ConfigHash = cfg
		m.Tenant = tenant
		m.Finished = fin
		if err := a.Put(m, events, nil); err != nil {
			t.Fatalf("Put %s: %v", id, err)
		}
	}
	t1 := time.Unix(1000, 0)
	t2 := time.Unix(2000, 0)
	put("r1", "abc123", "cfg111", "alice", "done", "k1", t1)
	put("r2", "abc123", "cfg222", "bob", "failed", "k2", t2)
	put("r3", "def456", "cfg111", "alice", "done", "k3", t2)

	cases := []struct {
		name string
		f    Filter
		want []string // newest first
	}{
		{"all", Filter{}, []string{"r3", "r2", "r1"}},
		{"circuit prefix", Filter{Circuit: "abc"}, []string{"r2", "r1"}},
		{"config prefix", Filter{Config: "cfg111"}, []string{"r3", "r1"}},
		{"tenant", Filter{Tenant: "alice"}, []string{"r3", "r1"}},
		{"state", Filter{State: "failed"}, []string{"r2"}},
		{"baseline", Filter{Baseline: "k3"}, []string{"r3"}},
		{"since", Filter{Since: time.Unix(1500, 0)}, []string{"r3", "r2"}},
		{"limit", Filter{Limit: 2}, []string{"r3", "r2"}},
		{"combo", Filter{Circuit: "abc", Tenant: "alice"}, []string{"r1"}},
	}
	for _, tc := range cases {
		got := a.List(tc.f)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: got %d runs, want %d", tc.name, len(got), len(tc.want))
		}
		for i, m := range got {
			if m.RunID != tc.want[i] {
				t.Fatalf("%s[%d]: got %s want %s", tc.name, i, m.RunID, tc.want[i])
			}
		}
	}
}

func TestBaselineSelection(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir)
	defer a.Close()
	events := runEvents(1, 5e8)
	side := rollupOf(t, events)

	m1 := metaFor("r1", "k1", "done", events)
	m1.Rollup = side
	m2 := metaFor("r2", "k1", "failed", events) // wrong state: never a baseline
	m3 := metaFor("r3", "k1", "done", events)   // done but no rollup
	m4 := metaFor("r4", "k2", "done", events)   // different key
	m4.Rollup = side
	for _, m := range []*Meta{m1, m2, m3, m4} {
		if err := a.Put(m, events, nil); err != nil {
			t.Fatalf("Put %s: %v", m.RunID, err)
		}
	}

	base, ok := a.Baseline("k1", 0)
	if !ok || base.RunID != "r1" {
		t.Fatalf("Baseline(k1): got %+v ok=%v, want r1", base, ok)
	}
	// beforeSeq excludes the candidate itself and everything newer.
	if _, ok := a.Baseline("k1", base.Seq); ok {
		t.Fatal("Baseline(k1, beforeSeq=r1.Seq) should find nothing older")
	}
	if _, ok := a.Baseline("k9", 0); ok {
		t.Fatal("Baseline on unknown key should miss")
	}
}

func TestBaselinesAndRollup(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir)
	defer a.Close()

	fast := runEvents(1, 4e8)
	slow := runEvents(1, 6e8)
	m1 := metaFor("r1", "k1", "done", fast)
	m1.Rollup = rollupOf(t, fast)
	m2 := metaFor("r2", "k1", "done", slow)
	m2.Rollup = rollupOf(t, slow)
	m3 := metaFor("r3", "k2", "failed", slow)
	for _, m := range []*Meta{m1, m2, m3} {
		ev := fast
		if err := a.Put(m, ev, nil); err != nil {
			t.Fatalf("Put %s: %v", m.RunID, err)
		}
	}

	bs := a.Baselines()
	if len(bs) != 2 {
		t.Fatalf("Baselines: %d keys, want 2", len(bs))
	}
	if bs[0].Key != "k1" || bs[0].Runs != 2 || bs[0].Completed != 2 || bs[0].Latest != "r2" {
		t.Fatalf("k1 info: %+v", bs[0])
	}
	if bs[1].Key != "k2" || bs[1].Completed != 0 {
		t.Fatalf("k2 info: %+v", bs[1])
	}

	cells := a.Rollup("k1")
	if len(cells) == 0 {
		t.Fatal("Rollup(k1) empty")
	}
	var tpi *RollupCell
	for i := range cells {
		if cells[i].Stage == "tpi" {
			tpi = &cells[i]
		}
	}
	if tpi == nil || tpi.Runs != 2 {
		t.Fatalf("tpi cell: %+v", tpi)
	}
	// Mean of 4e8 and 6e8 is 5e8; quantile estimates are bucketed, so
	// only sanity-check the mean.
	if tpi.MeanNS != 5e8 {
		t.Fatalf("tpi mean: %g want 5e8", tpi.MeanNS)
	}
	if tpi.P50NS <= 0 || tpi.P99NS < tpi.P50NS {
		t.Fatalf("tpi quantiles: p50=%g p99=%g", tpi.P50NS, tpi.P99NS)
	}
}

// TestCompaction: enough Puts to cross CompactBytes fold the index into
// a snapshot, and a reopen on the compacted index still sees every run.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{NoSync: true, CompactBytes: 1}) // compact after every Put
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	events := runEvents(1, 5e8)
	for i := 0; i < 5; i++ {
		m := metaFor(fmt.Sprintf("r%d", i), "k1", "done", events)
		m.Rollup = rollupOf(t, events)
		if err := a.Put(m, events, nil); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	a.Close()

	b := openT(t, dir)
	defer b.Close()
	if st := b.Stats(); st.Runs != 5 {
		t.Fatalf("after compacted reopen: %+v", st)
	}
	base, ok := b.Baseline("k1", 0)
	if !ok || base.RunID != "r4" || base.Rollup == nil {
		t.Fatalf("baseline after compaction: %+v ok=%v", base, ok)
	}
}

// TestReplacedRun: a crash-replayed run retiring again replaces its
// previous entry instead of double-counting bytes.
func TestReplacedRun(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir)
	defer a.Close()
	events := runEvents(1, 5e8)
	if err := a.Put(metaFor("r1", "k1", "done", events), events, []byte("prof")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	first := a.Stats()
	// Re-archive the same run_id, this time without a profile.
	if err := a.Put(metaFor("r1", "k1", "done", events), events, nil); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	st := a.Stats()
	if st.Runs != 1 {
		t.Fatalf("runs=%d want 1", st.Runs)
	}
	if st.Bytes >= first.Bytes {
		t.Fatalf("bytes not rebased: first=%d now=%d (profile should be gone)", first.Bytes, st.Bytes)
	}
	if _, err := a.OpenProfile("r1"); !os.IsNotExist(err) {
		t.Fatalf("stale profile survived replacement: %v", err)
	}
}
