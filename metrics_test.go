package tpilayout

import (
	"context"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// TestMetricsExpositionEndToEnd runs a real (scaled-down) sweep with a
// PromSink attached and scrapes it over HTTP, asserting the acceptance
// contract of the /metrics surface: valid Prometheus text format, and
// for every flow stage at least one counter, one gauge, and one
// histogram family carrying that stage's label.
func TestMetricsExpositionEndToEnd(t *testing.T) {
	design, err := Generate(S38417Class().Scale(0.05), DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	sink := NewPromSink("tpilayout")
	cfg := ExperimentConfig("s38417c")
	cfg.Workers = 2
	cfg.Telemetry = NewTracer(sink)
	if _, err := SweepContext(context.Background(), design, cfg, []float64{0, 2}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(sink)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q, want text format 0.0.4", ct)
	}
	var sb strings.Builder
	buf := make([]byte, 64*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	out := sb.String()

	// Every stage of the flow (plus the run and sweep aggregates) must
	// expose all three metric kinds.
	stages := append([]string{"sweep", "run"}, traceStages...)
	for _, st := range stages {
		for _, fam := range []string{
			"tpilayout_spans_total",              // counter
			"tpilayout_stage_last_duration_ns",   // gauge
			"tpilayout_stage_duration_ns_bucket", // histogram
		} {
			if !strings.Contains(out, fmt.Sprintf("%s{stage=%q", fam, st)) {
				t.Errorf("stage %s missing family %s", st, fam)
			}
		}
	}

	// The hot-path instrumentation shows up as explicit histogram
	// families with nonzero counts.
	for _, fam := range []string{
		"tpilayout_flow_stage_ns",
		"tpilayout_atpg_podem_ns",
		"tpilayout_atpg_podem_bt_depth",
		"tpilayout_atpg_sim_batch_ns",
		"tpilayout_atpg_sim_detect_ns",
		"tpilayout_place_fm_cut_delta",
		"tpilayout_route_net_ns",
		"tpilayout_route_net_overflows",
	} {
		if !strings.Contains(out, "# TYPE "+fam+" histogram") {
			t.Errorf("missing histogram family %s", fam)
			continue
		}
		re := regexp.MustCompile(regexp.QuoteMeta(fam) + `_count\{[^}]*\} ([0-9]+)`)
		m := re.FindStringSubmatch(out)
		if m == nil || m[1] == "0" {
			t.Errorf("histogram family %s has no observations", fam)
		}
	}

	// Text-format validity: every sample line is name{labels} value.
	sample := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*\{[^}]*\} -?[0-9.eE+\-Inf]+$`)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}
