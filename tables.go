package tpilayout

import "tpilayout/internal/flow"

// The table renderers live in internal/flow next to the Metrics type they
// consume (the service daemon renders result tables without importing the
// root package); these wrappers are the supported public API.

// FormatTable1 renders the paper's Table 1 (impact of TPI on test data)
// from a sweep's metrics rows. The first row is the 0-test-point baseline
// against which the reduction columns are computed.
func FormatTable1(rows []Metrics) string { return flow.FormatTable1(rows) }

// FormatTable2 renders the paper's Table 2 (impact of TPI on silicon
// area).
func FormatTable2(rows []Metrics) string { return flow.FormatTable2(rows) }

// FormatTable3 renders the paper's Table 3 (impact of TPI on timing),
// one block per clock domain with the Eq. 3 decomposition.
func FormatTable3(rows []Metrics) string { return flow.FormatTable3(rows) }

// CompletedMetrics extracts the successful rows of a partial sweep, in
// level order — the rows the Format functions can render.
func CompletedMetrics(levels []LevelResult) []Metrics { return flow.CompletedMetrics(levels) }

// FormatSweepFailures renders the failed rows of a partial sweep, one
// clearly-marked line per failed level ("" when every level completed).
func FormatSweepFailures(levels []LevelResult) string { return flow.FormatSweepFailures(levels) }
