package tpilayout

// End-to-end test of the TPI service daemon: a real (reduced-scale)
// s38417c sweep is submitted over HTTP, its live span events are
// consumed over SSE while it runs, and the returned Tables 1–3 are
// pinned to the same golden file as the in-process sweep — the service
// layer is not allowed to change a single output byte. A second
// identical submission must be a cache hit that runs zero extra flows.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tpilayout/internal/service"
	"tpilayout/internal/telemetry"
)

func TestServiceEndToEnd(t *testing.T) {
	prom := telemetry.NewPromSink("tpid")
	srv := service.New(service.Options{Workers: 2, FlowWorkers: 2, Metrics: prom})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	mux := http.NewServeMux()
	mux.Handle("/v1/", srv)
	mux.Handle("/metrics", prom)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// The same sweep the golden test runs in-process: s38417c at 5%
	// scale, TP levels 0/2/5, the paper's s38417 preset.
	body, err := json.Marshal(service.JobRequest{
		Tenant:   "e2e",
		Circuit:  service.CircuitSpec{Spec: "s38417c", Scale: 0.05},
		TPLevels: []float64{0, 2, 5},
		Flow:     service.FlowConfig{Experiment: "s38417c"},
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Attach to the live event stream while the sweep runs. Reading it
	// to EOF yields the full NDJSON trace plus the terminal done frame.
	type sseResult struct {
		trace *telemetry.Trace
		final service.JobStatus
		err   error
	}
	sseCh := make(chan sseResult, 1)
	go func() {
		sseCh <- consumeSSE(ts.URL + "/v1/jobs/" + st.ID + "/events")
	}()

	// Poll to completion.
	deadline := time.Now().Add(5 * time.Minute)
	for {
		got := getJSON[service.JobStatus](t, ts.URL+"/v1/jobs/"+st.ID)
		if got.State == service.StateDone {
			break
		}
		if got.State == service.StateFailed || got.State == service.StateCanceled {
			t.Fatalf("job ended %s: %s", got.State, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep did not finish in time (state %s)", got.State)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The result's rendered tables must match the committed golden file
	// byte for byte.
	res := getJSON[service.JobResult](t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if !res.Complete {
		t.Fatalf("result incomplete: %+v", res.Levels)
	}
	if res.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	rendered := res.Table1 + "\n" + res.Table2 + "\n" + res.Table3
	want, err := os.ReadFile(filepath.Join(goldenDir, "sweep_s38417c.golden"))
	if err != nil {
		t.Fatalf("missing golden file (run TestSweepGolden -update first): %v", err)
	}
	if rendered != string(want) {
		t.Errorf("service tables drifted from golden file\n%s", diffLines(string(want), rendered))
	}

	// The SSE stream: a parseable, balanced trace covering all three
	// levels, closed by a done frame.
	sse := <-sseCh
	if sse.err != nil {
		t.Fatalf("SSE stream: %v", sse.err)
	}
	if !sse.trace.Balanced() {
		t.Fatalf("SSE trace unbalanced: %v", sse.trace.Unbalanced)
	}
	if len(sse.trace.Spans) == 0 {
		t.Fatal("SSE trace carried no spans")
	}
	if got := fmt.Sprint(sse.trace.Levels()); got != "[0 2 5]" {
		t.Fatalf("SSE trace levels = %s, want [0 2 5]", got)
	}
	if sse.final.State != service.StateDone {
		t.Fatalf("SSE done frame state = %s, want done", sse.final.State)
	}

	// Second identical submission: answered from the cache, zero extra
	// flows executed.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached submit = %d, want 200", resp2.StatusCode)
	}
	var st2 service.JobStatus
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("second identical submission was not a cache hit")
	}
	if n := srv.FlowRuns(); n != 1 {
		t.Fatalf("flow runs = %d, want 1 (cache must absorb the repeat)", n)
	}

	// The scrape shows both engine and service families.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := bufio.NewReader(mresp.Body).WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	exposition := sb.String()
	for _, fam := range []string{
		"tpid_service_flow_runs_total",
		"tpid_service_jobs_done_total",
		"tpid_service_cache_hit_jobs_total",
		"tpid_service_queue_wait_ns",
		"tpid_spans_total",
	} {
		if !strings.Contains(exposition, fam) {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
}

// consumeSSE reads one /events stream to EOF, splitting the NDJSON data
// frames from the terminal done frame, and parses the former as a trace.
func consumeSSE(url string) (out struct {
	trace *telemetry.Trace
	final service.JobStatus
	err   error
}) {
	resp, err := http.Get(url)
	if err != nil {
		out.err = err
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out.err = fmt.Errorf("events = %d", resp.StatusCode)
		return
	}
	var ndjson bytes.Buffer
	var doneFrame string
	inDone := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: done":
			inDone = true
		case strings.HasPrefix(line, "data: "):
			if inDone {
				doneFrame = strings.TrimPrefix(line, "data: ")
			} else {
				ndjson.WriteString(strings.TrimPrefix(line, "data: "))
				ndjson.WriteByte('\n')
			}
		}
	}
	if err := sc.Err(); err != nil {
		out.err = err
		return
	}
	if doneFrame == "" {
		out.err = fmt.Errorf("stream ended without a done frame")
		return
	}
	if err := json.Unmarshal([]byte(doneFrame), &out.final); err != nil {
		out.err = fmt.Errorf("done frame: %w", err)
		return
	}
	out.trace, out.err = telemetry.ParseTrace(&ndjson)
	return
}

// getJSON fetches url and decodes its body into T.
func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	var v T
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}
