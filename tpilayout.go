// Package tpilayout reproduces the experimental study "Impact of Test
// Point Insertion on Silicon Area and Timing during Layout" (Vranken,
// Sapei, Wunderlich — DATE 2004) as a self-contained Go library.
//
// It bundles a complete miniature EDA flow: a 130 nm-class standard-cell
// library, gate-level netlists, testability analysis (SCOAP/COP),
// TSFF-based test point insertion, full-scan insertion with layout-driven
// chain reordering, PODEM ATPG with compaction and bit-parallel fault
// simulation, min-cut placement, clock-tree synthesis, global routing, RC
// extraction, and static timing analysis.
//
// The typical entry point is Sweep, which reruns the paper's experiment —
// six layouts per circuit, at 0%..5% test points — and returns one
// metrics row per layout covering the paper's Tables 1, 2 and 3:
//
//	design, _ := tpilayout.Generate(tpilayout.S38417Class(), tpilayout.DefaultLibrary())
//	rows, _ := tpilayout.Sweep(design, tpilayout.ExperimentConfig("s38417c"), []float64{0, 1, 2, 3, 4, 5})
//	fmt.Print(tpilayout.FormatTable1(rows))
package tpilayout

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/flow"
	"tpilayout/internal/netlist"
	"tpilayout/internal/scan"
	"tpilayout/internal/stdcell"
)

// Re-exported core types. The internal packages remain the implementation
// surface; these aliases are the supported public API.
type (
	// Spec describes a benchmark circuit profile.
	Spec = circuitgen.Spec
	// Netlist is a mapped gate-level design.
	Netlist = netlist.Netlist
	// Library is a standard-cell library.
	Library = stdcell.Library
	// Config selects DfT and layout parameters for one flow run.
	Config = flow.Config
	// Result is everything one flow run produces.
	Result = flow.Result
	// Metrics is one row across the paper's Tables 1–3.
	Metrics = flow.Metrics
	// DomainTiming is one Table 3 row (one clock domain of one layout).
	DomainTiming = flow.DomainTiming
)

// DefaultLibrary returns the 130 nm-class standard-cell library used by
// all experiments.
func DefaultLibrary() *Library { return stdcell.Default() }

// Benchmark circuit profiles from the paper's setup.
func S38417Class() Spec       { return circuitgen.S38417Class() }
func WirelessCtrlClass() Spec { return circuitgen.WirelessCtrlClass() }
func DSPCoreClass() Spec      { return circuitgen.DSPCoreClass() }

// SpecByName resolves the experiment circuits by their paper names.
func SpecByName(name string) (Spec, error) {
	switch name {
	case "s38417", "s38417c":
		return S38417Class(), nil
	case "circuit1", "wctrl1", "wireless":
		return WirelessCtrlClass(), nil
	case "p26909", "p26909c", "dsp":
		return DSPCoreClass(), nil
	}
	return Spec{}, fmt.Errorf("tpilayout: unknown circuit %q (want s38417, s38417c, circuit1, wctrl1, wireless, p26909, p26909c, or dsp)", name)
}

// Generate builds the netlist for a circuit spec.
func Generate(spec Spec, lib *Library) (*Netlist, error) {
	return circuitgen.Generate(spec, lib)
}

// Run executes the full Figure 2 flow once.
func Run(design *Netlist, cfg Config) (*Result, error) { return flow.Run(design, cfg) }

// CriticalNets returns a TPI exclusion set from a baseline layout's
// critical paths (the Section 5 technique).
func CriticalNets(design *Netlist, cfg Config) (map[netlist.NetID]bool, error) {
	return flow.CriticalNets(design, cfg)
}

// ExperimentConfig returns the per-circuit flow configuration the paper
// describes: chains of at most 100 flops for s38417 and circuit 1 with
// 97% row utilization, at most 32 chains and 50% utilization for p26909.
func ExperimentConfig(circuit string) Config {
	cfg := Config{}
	switch circuit {
	case "p26909c", "p26909":
		cfg.Scan = scan.Options{MaxChains: 32}
		cfg.Place.TargetUtilization = 0.50
	default:
		cfg.Scan = scan.Options{MaxChainLength: 100}
		cfg.Place.TargetUtilization = 0.97
	}
	return cfg
}

// Sweep runs the flow for each test-point percentage and returns one
// metrics row per layout, in order. Each layout is generated from scratch
// (separate floorplans), exactly as the paper does.
//
// The layouts are independent, so Sweep fans them out over up to
// cfg.Workers goroutines (GOMAXPROCS when 0), each running the full
// Figure 2 flow on its own clone of design. Results are reassembled in
// input order and are bit-identical to a serial (Workers: 1) run; only
// the wall-clock time changes.
func Sweep(design *Netlist, cfg Config, tpPercents []float64) ([]Metrics, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tpPercents) {
		workers = len(tpPercents)
	}
	if workers <= 1 {
		var rows []Metrics
		for _, pct := range tpPercents {
			c := cfg
			c.TPPercent = pct
			r, err := flow.Run(design, c)
			if err != nil {
				return nil, fmt.Errorf("tpilayout: sweep at %.1f%%: %w", pct, err)
			}
			rows = append(rows, r.Metrics)
		}
		return rows, nil
	}

	rows := make([]Metrics, len(tpPercents))
	errs := make([]error, len(tpPercents))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tpPercents) {
					return
				}
				c := cfg
				c.TPPercent = tpPercents[i]
				// flow.Run works on its own deep copy of design; cloning
				// here as well keeps the shared design strictly read-only
				// inside the worker.
				r, err := flow.Run(design.Clone(), c)
				if err != nil {
					errs[i] = fmt.Errorf("tpilayout: sweep at %.1f%%: %w", tpPercents[i], err)
					continue
				}
				rows[i] = r.Metrics
			}
		}()
	}
	wg.Wait()
	// Deterministic error reporting: the first failing level by input
	// order wins, matching what a serial run would have returned.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
