// Package tpilayout reproduces the experimental study "Impact of Test
// Point Insertion on Silicon Area and Timing during Layout" (Vranken,
// Sapei, Wunderlich — DATE 2004) as a self-contained Go library.
//
// It bundles a complete miniature EDA flow: a 130 nm-class standard-cell
// library, gate-level netlists, testability analysis (SCOAP/COP),
// TSFF-based test point insertion, full-scan insertion with layout-driven
// chain reordering, PODEM ATPG with compaction and bit-parallel fault
// simulation, min-cut placement, clock-tree synthesis, global routing, RC
// extraction, and static timing analysis.
//
// The typical entry point is Sweep, which reruns the paper's experiment —
// six layouts per circuit, at 0%..5% test points — and returns one
// metrics row per layout covering the paper's Tables 1, 2 and 3:
//
//	design, _ := tpilayout.Generate(tpilayout.S38417Class(), tpilayout.DefaultLibrary())
//	rows, _ := tpilayout.Sweep(design, tpilayout.ExperimentConfig("s38417c"), []float64{0, 1, 2, 3, 4, 5})
//	fmt.Print(tpilayout.FormatTable1(rows))
//
// Execution is supervised end to end: the Context variants (RunContext,
// SweepContext, SweepPartial) honor cancellation inside every long loop,
// failures surface as typed *StageError values, ATPG runs can be
// deadline-bounded (returning a valid Truncated result, like an
// industrial abort), and a panicking sweep level degrades into one
// failed row instead of killing the process.
package tpilayout

import (
	"context"
	"io"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/flow"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
	"tpilayout/internal/telemetry"
)

// Re-exported core types. The internal packages remain the implementation
// surface; these aliases are the supported public API.
type (
	// Spec describes a benchmark circuit profile.
	Spec = circuitgen.Spec
	// Netlist is a mapped gate-level design.
	Netlist = netlist.Netlist
	// Library is a standard-cell library.
	Library = stdcell.Library
	// Config selects DfT and layout parameters for one flow run.
	Config = flow.Config
	// Result is everything one flow run produces.
	Result = flow.Result
	// Metrics is one row across the paper's Tables 1–3.
	Metrics = flow.Metrics
	// DomainTiming is one Table 3 row (one clock domain of one layout).
	DomainTiming = flow.DomainTiming
	// StageError is the typed failure of one flow stage; every error
	// returned by Run/Sweep and their Context variants wraps one
	// (recoverable with errors.As).
	StageError = flow.StageError
	// SweepMode selects full per-level reruns (the default oracle path)
	// or the incremental cross-level engine; both produce bit-identical
	// tables.
	SweepMode = flow.SweepMode

	// Tracer is the observability entry point: set Config.Telemetry to a
	// NewTracer(...) and every flow stage and sweep level is timed and
	// counted into the attached sinks. A nil Tracer is free.
	Tracer = telemetry.Tracer
	// TraceSink consumes telemetry events (NDJSON writer, progress
	// printer, expvar publisher, or any custom implementation).
	TraceSink = telemetry.Sink
	// TraceEvent is one span_start/span_end record — also the NDJSON
	// wire format, one JSON object per line.
	TraceEvent = telemetry.Event
	// TraceSpan is one timed region of a run.
	TraceSpan = telemetry.Span
	// Snapshot is the in-memory span tree of one run, attached to
	// Result.Telemetry.
	Snapshot = telemetry.Snapshot
	// Trace is a parsed NDJSON trace file (see ParseTrace).
	Trace = telemetry.Trace
	// Histogram is a lock-free latency/size distribution attached to a
	// span (power-of-two buckets, mergeable, nil is free).
	Histogram = telemetry.Histogram
	// LocalHist is a single-goroutine histogram shard, flushed into its
	// parent Histogram at batch end.
	LocalHist = telemetry.LocalHist
	// HistData is a histogram snapshot: the NDJSON/ledger wire form with
	// quantile estimation and index-wise merging.
	HistData = telemetry.HistData
	// PromSink folds telemetry into a Prometheus text exposition; mount
	// it on /metrics and attach it to a Tracer to scrape a live sweep.
	PromSink = telemetry.PromSink
	// Logger is the leveled structured logger (log/slog text or JSON
	// lines) whose records also flow into telemetry sinks as log events.
	// A nil *Logger is disabled at zero cost, like a nil Tracer.
	Logger = telemetry.Logger
	// FlightRecorder is the fixed-size black-box ring buffer retaining
	// the most recent telemetry events, dumped as NDJSON.
	FlightRecorder = telemetry.FlightRecorder
)

// NewTracer builds a tracer delivering events to the given sinks.
func NewTracer(sinks ...TraceSink) *Tracer { return telemetry.New(sinks...) }

// NewNDJSONSink writes one JSON event per line to w (cmd/tracestat and
// jq read the format back).
func NewNDJSONSink(w io.Writer) *telemetry.NDJSONSink { return telemetry.NewNDJSONSink(w) }

// NewProgressSink prints a human-readable line per stage start/end.
func NewProgressSink(w io.Writer) *telemetry.ProgressSink { return telemetry.NewProgressSink(w) }

// NewExpvarSink publishes live counters under the named expvar map.
func NewExpvarSink(name string) *telemetry.ExpvarSink { return telemetry.NewExpvarSink(name) }

// NewPromSink builds a Prometheus /metrics exposition surface (text
// format 0.0.4) with every family namespaced under prefix.
func NewPromSink(prefix string) *PromSink { return telemetry.NewPromSink(prefix) }

// ParseTrace reads an NDJSON trace and reconstructs its spans,
// reporting unbalanced start/end pairs. Log events and service
// observation events (span_end with id 0) are collected separately and
// never count against balance.
func ParseTrace(r io.Reader) (*Trace, error) { return telemetry.ParseTrace(r) }

// NewLogger builds a structured logger writing format ("text" or
// "json") lines at or above level ("debug", "info", "warn", "error")
// to w, forwarding every record to the given sinks as log events (so a
// FlightRecorder sink retains log lines interleaved with spans).
func NewLogger(w io.Writer, format, level string, sinks ...TraceSink) (*Logger, error) {
	lv, err := telemetry.ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	return telemetry.NewLogger(w, format, lv, sinks...)
}

// NewFlightRecorder builds a black-box ring retaining the last n
// telemetry events (a default size when n <= 0); attach it to tracers
// and loggers as a sink and dump it with WriteNDJSON.
func NewFlightRecorder(n int) *FlightRecorder { return telemetry.NewFlightRecorder(n) }

// DefaultLibrary returns the 130 nm-class standard-cell library used by
// all experiments.
func DefaultLibrary() *Library { return stdcell.Default() }

// Benchmark circuit profiles from the paper's setup.
func S38417Class() Spec       { return circuitgen.S38417Class() }
func WirelessCtrlClass() Spec { return circuitgen.WirelessCtrlClass() }
func DSPCoreClass() Spec      { return circuitgen.DSPCoreClass() }

// SpecByName resolves the experiment circuits by their paper names.
// Matching is case-insensitive and ignores surrounding whitespace, so
// "S38417 " resolves like "s38417".
func SpecByName(name string) (Spec, error) { return circuitgen.SpecByName(name) }

// Generate builds the netlist for a circuit spec.
func Generate(spec Spec, lib *Library) (*Netlist, error) {
	return circuitgen.Generate(spec, lib)
}

// Run executes the full Figure 2 flow once.
func Run(design *Netlist, cfg Config) (*Result, error) { return flow.Run(design, cfg) }

// RunContext executes the full Figure 2 flow once under supervision: the
// context cancels the run within one work unit (one PODEM fault, one
// bisection cut, one routed net, one STA slice), every failure is a
// *StageError naming the failing stage and TP level, and panics anywhere
// in the flow are isolated into errors instead of crashing the process.
func RunContext(ctx context.Context, design *Netlist, cfg Config) (*Result, error) {
	return flow.RunContext(ctx, design, cfg)
}

// CriticalNets returns a TPI exclusion set from a baseline layout's
// critical paths (the Section 5 technique).
func CriticalNets(design *Netlist, cfg Config) (map[netlist.NetID]bool, error) {
	return flow.CriticalNets(design, cfg)
}

// Sweep scheduling modes (Config.SweepMode).
const (
	// SweepFull reruns every level from the pristine base, fanned out
	// across Config.Workers.
	SweepFull = flow.SweepFull
	// SweepIncremental serializes levels in ascending TP order and
	// threads each level's artifacts (TPI prefix, prewarmed caches, ATPG
	// memo) into the next.
	SweepIncremental = flow.SweepIncremental
)

// ParseSweepMode parses a -sweep-mode flag value ("", "full",
// "incremental", "incr").
func ParseSweepMode(s string) (SweepMode, error) { return flow.ParseSweepMode(s) }

// ExperimentConfig returns the per-circuit flow configuration the paper
// describes: chains of at most 100 flops for s38417 and circuit 1 with
// 97% row utilization, at most 32 chains and 50% utilization for p26909.
func ExperimentConfig(circuit string) Config { return flow.ExperimentConfig(circuit) }

// LevelResult is the outcome of one level of a partial-failure sweep:
// either Metrics (Err == nil) or the level's typed failure (Err != nil,
// normally a *StageError). TPPercent identifies the level either way.
type LevelResult = flow.LevelResult

// Sweep runs the flow for each test-point percentage and returns one
// metrics row per layout, in order. Each layout is generated from scratch
// (separate floorplans), exactly as the paper does.
//
// The layouts are independent, so Sweep fans them out over up to
// cfg.Workers goroutines (GOMAXPROCS when 0), each running the full
// Figure 2 flow on its own clone of design. Results are reassembled in
// input order and are bit-identical to a serial (Workers: 1) run; only
// the wall-clock time changes.
func Sweep(design *Netlist, cfg Config, tpPercents []float64) ([]Metrics, error) {
	return flow.Sweep(design, cfg, tpPercents)
}

// SweepContext is Sweep under supervision: cancelling the context stops
// every in-flight layout within one work unit and returns the context's
// error. All levels are attempted; if any fail, the error of the first
// failing level in input order is returned (use SweepPartial to also
// recover the levels that completed).
func SweepContext(ctx context.Context, design *Netlist, cfg Config, tpPercents []float64) ([]Metrics, error) {
	return flow.SweepContext(ctx, design, cfg, tpPercents)
}

// SweepPartial is the graceful-degradation sweep: it runs every level and
// returns one LevelResult per TP percentage, in input order, so a failed,
// panicked, or timed-out level is reported in place while completed
// levels survive. The returned error is non-nil only for sweep-level
// problems (an invalid Config) — per-level failures live in the
// LevelResult.Err fields. Each worker is panic-isolated: one crashing
// level can neither kill the process nor poison its siblings.
func SweepPartial(ctx context.Context, design *Netlist, cfg Config, tpPercents []float64) ([]LevelResult, error) {
	return flow.SweepPartial(ctx, design, cfg, tpPercents)
}
