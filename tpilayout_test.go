package tpilayout

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

func TestSpecByName(t *testing.T) {
	// Every accepted alias, mapped to the profile it must resolve to.
	cases := []struct {
		alias string
		want  Spec
	}{
		{"s38417", S38417Class()},
		{"s38417c", S38417Class()},
		{"circuit1", WirelessCtrlClass()},
		{"wctrl1", WirelessCtrlClass()},
		{"wireless", WirelessCtrlClass()},
		{"p26909", DSPCoreClass()},
		{"p26909c", DSPCoreClass()},
		{"dsp", DSPCoreClass()},
	}
	for _, tc := range cases {
		got, err := SpecByName(tc.alias)
		if err != nil {
			t.Errorf("SpecByName(%q): %v", tc.alias, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SpecByName(%q) = %s profile, want %s", tc.alias, got.Name, tc.want.Name)
		}
	}
	_, err := SpecByName("c17")
	if err == nil {
		t.Fatal("SpecByName accepted an unknown circuit")
	}
	// The error must list every accepted alias, so a typo points the user
	// at the full menu.
	for _, tc := range cases {
		if !strings.Contains(err.Error(), tc.alias) {
			t.Errorf("SpecByName error %q does not mention accepted alias %q", err, tc.alias)
		}
	}
}

// TestSpecByNameForgivesCaseAndWhitespace: aliases resolve regardless of
// letter case and surrounding whitespace — "S38417 " works like "s38417".
func TestSpecByNameForgivesCaseAndWhitespace(t *testing.T) {
	cases := []struct {
		alias string
		want  Spec
	}{
		{"S38417 ", S38417Class()},
		{" s38417C", S38417Class()},
		{"S38417C", S38417Class()},
		{" WCTRL1", WirelessCtrlClass()},
		{"Circuit1\t", WirelessCtrlClass()},
		{"WIRELESS", WirelessCtrlClass()},
		{"Dsp", DSPCoreClass()},
		{"  P26909c  ", DSPCoreClass()},
		{"\tP26909\n", DSPCoreClass()},
	}
	for _, tc := range cases {
		got, err := SpecByName(tc.alias)
		if err != nil {
			t.Errorf("SpecByName(%q): %v", tc.alias, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SpecByName(%q) = %s profile, want %s", tc.alias, got.Name, tc.want.Name)
		}
	}
	// Normalization must not make garbage resolve.
	if _, err := SpecByName("  C17  "); err == nil {
		t.Error("SpecByName accepted an unknown circuit after normalization")
	}
}

func TestExperimentConfigMatchesPaperSetup(t *testing.T) {
	// s38417 / circuit 1: chains of at most 100 flops, 97% utilization.
	c := ExperimentConfig("s38417c")
	if c.Scan.MaxChainLength != 100 || c.Place.TargetUtilization != 0.97 {
		t.Errorf("s38417 config = %+v", c)
	}
	// p26909: at most 32 chains, 50% utilization.
	p := ExperimentConfig("p26909c")
	if p.Scan.MaxChains != 32 || p.Place.TargetUtilization != 0.50 {
		t.Errorf("p26909 config = %+v", p)
	}
}

// TestPublicAPISweep drives the whole experiment through the public API
// and checks the paper's headline claims hold at reduced scale:
// near-linear area growth, TDV/TAT reduction, Eq. 1/2 consistency.
func TestPublicAPISweep(t *testing.T) {
	design, err := Generate(S38417Class().Scale(0.06), DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExperimentConfig("s38417c")
	rows, err := Sweep(design, cfg, []float64{0, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	base, last := rows[0], rows[2]
	if last.NumTP <= base.NumTP {
		t.Error("TP count did not grow across the sweep")
	}
	if last.Cells <= base.Cells {
		t.Error("cell count did not grow with test points")
	}
	if last.CoreArea < base.CoreArea {
		t.Error("core area shrank with test points")
	}
	for _, m := range rows {
		if m.TDV != 2*int64(m.Chains)*m.TAT {
			t.Errorf("Eq. 1/2 inconsistent at %d TPs", m.NumTP)
		}
		if m.FC < 90 || m.FE < m.FC {
			t.Errorf("coverage out of range at %d TPs: FC %.1f FE %.1f", m.NumTP, m.FC, m.FE)
		}
	}
}

// TestSweepDeterministic runs the same sweep (ATPG included, so the
// fault-simulation shards are exercised too) under several worker counts
// and demands identical Metrics slices: the concurrency layer must be
// invisible in the results. CI runs this under -race, which also makes it
// the data-race canary for the whole parallel path.
func TestSweepDeterministic(t *testing.T) {
	design, err := Generate(S38417Class().Scale(0.04), DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExperimentConfig("s38417c")
	levels := []float64{0, 3}

	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	var ref []Metrics
	for _, w := range counts {
		c := cfg
		c.Workers = w
		rows, err := Sweep(design, c, levels)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = rows
			continue
		}
		if !reflect.DeepEqual(ref, rows) {
			t.Fatalf("sweep with %d workers diverges from %d workers:\n%+v\nvs\n%+v",
				w, counts[0], rows, ref)
		}
	}
}

func TestFormatTables(t *testing.T) {
	rows := []Metrics{
		{
			Circuit: "demo", NumTP: 0, NumFF: 100, Chains: 2, LMax: 50,
			Faults: 1000, FC: 98.5, FE: 99.1, Patterns: 200, TDV: 40000, TAT: 10000,
			Cells: 900, Rows: 10, LRows: 1000, CoreArea: 3700, FillerPct: 3,
			ChipArea: 6000, LWires: 50000,
			Timing: []DomainTiming{{Domain: "clk", TcpPS: 5000, FmaxMHz: 200,
				TWires: 100, TIntr: 2000, TLoadDep: 2700, TSetup: 110, TSkew: 90}},
		},
		{
			Circuit: "demo", NumTP: 5, NumFF: 105, Chains: 2, LMax: 53,
			Faults: 1050, FC: 98.7, FE: 99.2, Patterns: 150, TDV: 31000, TAT: 7900,
			Cells: 915, Rows: 10, LRows: 1010, CoreArea: 3737, FillerPct: 2.9,
			ChipArea: 6050, LWires: 50900,
			Timing: []DomainTiming{{Domain: "clk", TcpPS: 5250, FmaxMHz: 190.4,
				TWires: 120, TIntr: 2080, TLoadDep: 2850, TSetup: 110, TSkew: 90}},
		},
	}
	t1 := FormatTable1(rows)
	if !strings.Contains(t1, "demo") || !strings.Contains(t1, "25.0") {
		t.Errorf("Table 1 missing 25%% pattern reduction:\n%s", t1)
	}
	t2 := FormatTable2(rows)
	if !strings.Contains(t2, "+1.00") {
		t.Errorf("Table 2 missing +1.00%% core increase:\n%s", t2)
	}
	t3 := FormatTable3(rows)
	if !strings.Contains(t3, "+5.00") {
		t.Errorf("Table 3 missing +5.00%% Tcp increase:\n%s", t3)
	}
	// Baseline rows show "-" in the delta columns.
	firstLine := strings.Split(t1, "\n")[2]
	if !strings.Contains(firstLine, "-") {
		t.Errorf("baseline row lacks '-' markers: %s", firstLine)
	}
}
