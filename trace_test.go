package tpilayout

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// traceStages is the stage sequence every successful run span must
// cover, in flow order (the Figure 2 flow with ATPG enabled).
var traceStages = []string{"TPI", "scan", "place", "atpg", "cts", "eco",
	"route", "extract", "sta"}

// TestSweepTraceWellFormed runs a parallel sweep (Workers=4 — CI runs
// this under -race) with an NDJSON sink attached and checks the trace
// contract end to end: every line parses, spans balance, the sweep root
// parents exactly one run span per TP level, and each run's stage
// children arrive in deterministic flow order regardless of how the
// workers interleaved.
func TestSweepTraceWellFormed(t *testing.T) {
	design, err := Generate(S38417Class().Scale(0.05), DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	levels := []float64{0, 1, 3}
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	cfg := ExperimentConfig("s38417c")
	cfg.Workers = 4
	cfg.Telemetry = NewTracer(sink)

	results, err := SweepPartial(context.Background(), design, cfg, levels)
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range results {
		if lr.Err != nil {
			t.Fatalf("level %.1f failed: %v", lr.TPPercent, lr.Err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	// Every NDJSON line parses (ParseTrace errors on any malformed line).
	trace, err := ParseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Balanced() {
		t.Fatalf("unbalanced spans: %v", trace.Unbalanced)
	}
	// 1 sweep root + per level (1 run + 9 stages).
	if want := 1 + len(levels)*(1+len(traceStages)); len(trace.Spans) != want {
		t.Fatalf("got %d spans, want %d", len(trace.Spans), want)
	}
	if got := trace.Levels(); len(got) != len(levels) {
		t.Fatalf("trace levels = %v, want %v", got, levels)
	}

	// Reconstruct the tree: sweep root → one run per level → stages.
	var sweepID int64 = -1
	runID := map[float64]int64{}
	for _, s := range trace.Spans {
		switch s.Stage {
		case "sweep":
			if sweepID != -1 {
				t.Fatal("more than one sweep root")
			}
			if s.TPPercent != -1 {
				t.Fatalf("sweep root tp = %v, want -1 sentinel", s.TPPercent)
			}
			sweepID = s.ID
		case "run":
			if _, dup := runID[s.TPPercent]; dup {
				t.Fatalf("two run spans at tp %.1f", s.TPPercent)
			}
			runID[s.TPPercent] = s.ID
		}
	}
	if sweepID == -1 || len(runID) != len(levels) {
		t.Fatalf("tree roots missing: sweep=%d runs=%v", sweepID, runID)
	}
	stagesOf := map[float64][]string{}
	for _, s := range trace.Spans {
		switch s.Stage {
		case "sweep":
		case "run":
			if s.Parent != sweepID {
				t.Fatalf("run tp %.1f parented to %d, not the sweep root", s.TPPercent, s.Parent)
			}
		default:
			want, ok := runID[s.TPPercent]
			if !ok || s.Parent != want {
				t.Fatalf("stage %s (tp %.1f) parented to %d, want run %d", s.Stage, s.TPPercent, s.Parent, want)
			}
			stagesOf[s.TPPercent] = append(stagesOf[s.TPPercent], s.Stage)
		}
	}
	// Spans end in deterministic flow order within each level: the
	// NDJSON end-event order per run is exactly the stage sequence, even
	// with four workers interleaving lines across levels.
	for tp, got := range stagesOf {
		if strings.Join(got, ",") != strings.Join(traceStages, ",") {
			t.Errorf("tp %.1f stage order = %v, want %v", tp, got, traceStages)
		}
	}
}
